// Per-rank timeline recording for the event-driven makespan simulator.
//
// dist::event_driven_makespan keeps one clock per rank but historically
// returned a single double and discarded the entire schedule it computed.
// A TimelineBuilder rides that walk and keeps every scheduled interval:
//
//   Compute — a LocalSweep / DenseGate / MeasureFlush phase executing on
//             the rank's 2^local_qubits partition;
//   Wire    — one pairwise Exchange hop (partner rank, rank bit, bytes,
//             and the fixed-vs-transfer cost split of the interconnect);
//   Wait    — the idle gap a rank spends parked at a rendezvous for a
//             late partner (the straggler-propagation signal).
//
// The resulting Timeline tiles every rank's axis [0, rank end]: each
// event starts where the previous one ends, Compute/Wire ends re-derive
// the simulator's clock values bit-exactly (`start + duration` is the
// same floating-point expression the simulator evaluated), and matched
// Wire events carry each other's index (`partner_event`). Those three
// properties are what let perf/critical_path.hpp walk the dependency DAG
// backward from the finishing event and prove its path sum equals the
// makespan, and what lets the what-if replay re-price the timeline under
// scaled knobs with a bit-exact identity at scale 1.0.
//
// Layering note: the data types here are deliberately header-only plain
// structs. The critical-path / what-if analysis lives in perf — *below*
// dist in the link order — and reads Timeline objects without linking any
// dist code. Recording (TimelineBuilder internals, record_timeline, the
// Chrome export) is implemented in timeline.cpp and only reachable from
// dist and the tools above it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dist/dist_sim.hpp"
#include "sv/plan.hpp"

namespace svsim::dist {

enum class TimelineEventKind : std::uint8_t { Compute, Wire, Wait };

/// Stable lowercase name ("compute", "wire", "wait") — the vocabulary of
/// the timeline JSON schema (scripts/check_timeline_schema.py).
inline const char* timeline_event_kind_name(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::Compute: return "compute";
    case TimelineEventKind::Wire: return "wire";
    case TimelineEventKind::Wait: return "wait";
  }
  return "?";
}

/// Sentinel for TimelineEvent::partner_event on non-Wire events.
inline constexpr std::uint32_t kNoPartnerEvent = ~std::uint32_t{0};

struct TimelineEvent {
  TimelineEventKind kind = TimelineEventKind::Compute;
  /// Plan phase this interval belongs to (Wait: the Exchange phase whose
  /// rendezvous caused the stall).
  sv::PhaseKind phase_kind = sv::PhaseKind::DenseGate;
  std::uint32_t phase_index = 0;
  /// Wire/Wait: hop index within the Exchange phase.
  std::uint32_t hop_index = 0;
  /// Compute: gates the phase applies (0 for free phases is impossible —
  /// zero-cost phases record no event at all).
  std::uint32_t gates = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;

  // Wire/Wait only ------------------------------------------------------
  /// The partner rank across the hop (Wait: the rank being waited for).
  std::uint64_t partner = 0;
  int rank_bit = -1;
  double bytes = 0.0;
  /// Interconnect cost split: duration == fixed + transfer for Wire.
  double fixed_seconds = 0.0;
  double transfer_seconds = 0.0;
  /// Wire: index of the matching Wire event in the partner rank's event
  /// list; kNoPartnerEvent otherwise.
  std::uint32_t partner_event = kNoPartnerEvent;

  /// End of the interval. For Compute/Wire this is bit-exactly the clock
  /// value the makespan simulator assigned (same FP expression).
  double end_seconds() const noexcept { return start_seconds + duration_seconds; }
};

struct RankTimeline {
  std::uint64_t rank = 0;
  /// Chronological; tiles [0, end_seconds] with no gaps (Wait events fill
  /// rendezvous stalls).
  std::vector<TimelineEvent> events;
  /// The rank's final clock value.
  double end_seconds = 0.0;
  // Per-kind sums over `events`, filled by TimelineBuilder::finish().
  double compute_seconds = 0.0;
  double wire_seconds = 0.0;
  double wait_seconds = 0.0;

  double busy_seconds() const noexcept {
    return compute_seconds + wire_seconds;
  }
};

/// record_timeline refuses plans wider than this: the recorder keeps every
/// event of every rank in memory, a much heavier footprint than the
/// makespan simulator's one double per rank (see kMakespanMaxRanks).
inline constexpr std::uint64_t kTimelineMaxRanks = std::uint64_t{1} << 12;

struct Timeline {
  // Provenance ----------------------------------------------------------
  std::string plan_id;  ///< sv::ExecutionPlan::summary_id()
  unsigned num_qubits = 0;
  unsigned node_qubits = 0;
  unsigned local_qubits = 0;
  unsigned block_qubits = 0;
  std::size_t num_phases = 0;
  std::string machine_name;
  std::string interconnect_name;

  /// The value event_driven_makespan returned == max over rank ends.
  double makespan_seconds = 0.0;
  std::vector<RankTimeline> ranks;

  std::size_t num_ranks() const noexcept { return ranks.size(); }
  std::size_t total_events() const noexcept {
    std::size_t n = 0;
    for (const auto& r : ranks) n += r.events.size();
    return n;
  }
  /// Rank-skew figure: max busy time / mean busy time (busy = compute +
  /// wire). 1.0 = perfectly balanced; 0 when no rank did any work.
  double imbalance() const noexcept {
    if (ranks.empty()) return 0.0;
    double max_busy = 0.0;
    double sum_busy = 0.0;
    for (const auto& r : ranks) {
      const double busy = r.busy_seconds();
      if (busy > max_busy) max_busy = busy;
      sum_busy += busy;
    }
    if (sum_busy <= 0.0) return 0.0;
    return max_busy / (sum_busy / static_cast<double>(ranks.size()));
  }
  /// Fraction of total rank-seconds spent on the wire: Σ wire /
  /// (ranks x makespan). 0 when the makespan is zero.
  double wire_utilization() const noexcept {
    if (ranks.empty() || makespan_seconds <= 0.0) return 0.0;
    double wire = 0.0;
    for (const auto& r : ranks) wire += r.wire_seconds;
    return wire / (static_cast<double>(ranks.size()) * makespan_seconds);
  }
};

/// Recorder handed to event_driven_makespan. The simulator stays the clock
/// authority: it passes the exact arrival clocks and cost terms it uses,
/// and the builder re-derives starts/ends with the same FP expressions so
/// recorded intervals match the returned makespan bit-exactly.
class TimelineBuilder {
 public:
  TimelineBuilder(const sv::ExecutionPlan& plan, std::string machine_name,
                  std::string interconnect_name);

  /// One compute phase on `rank`: interval [start, start + duration).
  void on_compute(std::uint64_t rank, std::uint32_t phase_index,
                  sv::PhaseKind kind, std::uint32_t gates, double start,
                  double duration);

  /// One pairwise hop between `rank_a` and `rank_b` arriving at clocks
  /// `arrive_a` / `arrive_b`. Appends a Wait to the early rank (gap to the
  /// rendezvous) and a matched Wire pair of duration fixed + transfer.
  void on_exchange(std::uint64_t rank_a, std::uint64_t rank_b,
                   std::uint32_t phase_index, std::uint32_t hop_index,
                   int rank_bit, double bytes, double fixed, double transfer,
                   double arrive_a, double arrive_b);

  /// Seals the timeline: records the makespan, computes per-rank sums.
  Timeline finish(double makespan_seconds);

 private:
  Timeline timeline_;
  bool finished_ = false;
};

/// Runs the event-driven makespan simulator with a recorder attached and
/// returns the full per-rank timeline. Publishes dist.timeline.* metrics
/// (records/events counters, imbalance/wire_utilization/makespan gauges)
/// into `ctx`'s registry and records its span into `ctx`'s tracer.
/// Throws svsim::Error when the plan spans more than kTimelineMaxRanks.
Timeline record_timeline(const sv::ExecutionPlan& plan,
                         const machine::MachineSpec& m,
                         const machine::ExecConfig& config,
                         const InterconnectSpec& net,
                         const StragglerConfig& straggler = {},
                         const ExecutionContext& ctx =
                             ExecutionContext::global());

/// Chrome trace (chrome://tracing / Perfetto) export: pid 3 holds one lane
/// per rank (compute + wait intervals), pid 4 one lane per exchanged rank
/// bit carrying the wire intervals. Pids 0-2 are left to the profiler
/// overlay (obs/profile.hpp) so the two traces can be concatenated into
/// one view.
void write_timeline_chrome_json(std::ostream& os, const Timeline& timeline);

}  // namespace svsim::dist
