// svsim_bench — unified benchmark runner for the telemetry harness.
//
//   svsim_bench --list
//   svsim_bench --all  [--json FILE] [--jsonl FILE] [--attr] [--no-tables]
//   svsim_bench --smoke [...]              # fast ctest tier (scaled-down)
//   svsim_bench --filter fig [...]         # substring case selection
//   svsim_bench fig1_target_qubit [...]    # exact case selection
//   svsim_bench --all --profile FILE       # + plan-phase OpenMetrics dump
//
// Every run prints the rendered tables (the human-readable view formerly
// produced by the per-figure binaries) and can additionally emit the
// structured records: one JSONL line per case (--jsonl) and an aggregate
// results document keyed by stable record IDs (--json) that
// scripts/bench_compare.py gates against a checked-in baseline.
//
// Measurement knobs (full tier defaults in parentheses):
//   --target-ci X     stop at this relative 95% CI          (0.03)
//   --max-seconds X   sampling budget per measurement       (0.5)
//   --max-reps N      repetition cap per measurement        (200)
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/bench/env.hpp"
#include "obs/bench/record.hpp"
#include "obs/bench/registry.hpp"
#include "obs/profile.hpp"
#include "sv/simd/simd.hpp"

using namespace svsim;
using obs::bench::BenchCase;
using obs::bench::BenchEnv;
using obs::bench::CaseResult;
using obs::bench::StatConfig;

namespace {

struct Options {
  bool list = false;
  bool all = false;
  bool smoke = false;
  bool attr = false;
  bool tables = true;
  std::vector<std::string> filters;
  std::vector<std::string> cases;
  std::string json_path;
  std::string jsonl_path;
  std::string profile_path;
  double target_ci = -1.0;
  double max_seconds = -1.0;
  int max_reps = -1;
};

void usage(std::ostream& os) {
  os << "usage: svsim_bench (--list | --all | --smoke | --filter S | CASE...)\n"
        "                   [--json FILE] [--jsonl FILE] [--attr]\n"
        "                   [--profile FILE] [--no-tables] [--target-ci X]\n"
        "                   [--max-seconds X] [--max-reps N]\n";
}

std::string next_value(int argc, char** argv, int& i, const char* flag) {
  require(i + 1 < argc, std::string("option '") + flag + "' requires a value");
  return argv[++i];
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") o.list = true;
    else if (a == "--all") o.all = true;
    else if (a == "--smoke") o.smoke = true;
    else if (a == "--attr") o.attr = true;
    else if (a == "--no-tables") o.tables = false;
    else if (a == "--filter") o.filters.push_back(next_value(argc, argv, i, "--filter"));
    else if (a == "--json") o.json_path = next_value(argc, argv, i, "--json");
    else if (a == "--jsonl") o.jsonl_path = next_value(argc, argv, i, "--jsonl");
    else if (a == "--profile") o.profile_path = next_value(argc, argv, i, "--profile");
    else if (a == "--target-ci") o.target_ci = std::stod(next_value(argc, argv, i, "--target-ci"));
    else if (a == "--max-seconds") o.max_seconds = std::stod(next_value(argc, argv, i, "--max-seconds"));
    else if (a == "--max-reps") o.max_reps = std::stoi(next_value(argc, argv, i, "--max-reps"));
    else if (a.rfind("--", 0) == 0) throw Error("unknown option '" + a + "'");
    else o.cases.push_back(a);
  }
  return o;
}

bool selected(const BenchCase& c, const Options& o) {
  if (!o.cases.empty()) {
    for (const std::string& id : o.cases)
      if (c.id == id) return true;
    return false;
  }
  if (!o.filters.empty()) {
    for (const std::string& f : o.filters)
      if (c.id.find(f) != std::string::npos) return true;
    return false;
  }
  return o.all || o.smoke;
}

}  // namespace

int main(int argc, char** argv) {
  // Records must be stamped with the kernel backend they measured; the
  // obs layer cannot see sv/simd, so the runner bridges the two.
  obs::bench::set_simd_env_provider(+[]() {
    const sv::simd::BackendInfo b = sv::simd::active_backend();
    return obs::bench::SimdEnvInfo{b.name, b.vector_bits};
  });

  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  const std::vector<BenchCase> cases = obs::bench::all_cases();

  if (o.list || (!o.all && !o.smoke && o.cases.empty() && o.filters.empty())) {
    std::cout << "registered benchmark cases:\n";
    for (const BenchCase& c : cases)
      std::cout << "  " << c.id << "  —  " << c.title << ": " << c.description
                << "\n";
    if (!o.list) {
      usage(std::cout);
      return 2;
    }
    return 0;
  }

  // Unknown explicit case names are an error, not a silent no-op.
  for (const std::string& id : o.cases) {
    bool known = false;
    for (const BenchCase& c : cases) known = known || c.id == id;
    if (!known) {
      std::cerr << "error: unknown case '" << id << "' (see --list)\n";
      return 2;
    }
  }

  // --profile implies the instrumented attribution rep: that is the rep
  // during which run_case installs an aggregate-mode profiler, and without
  // it the registry would stay empty.
  if (!o.profile_path.empty()) o.attr = true;

  StatConfig config = o.smoke ? StatConfig::smoke() : StatConfig::full();
  if (o.target_ci > 0) config.target_rel_ci = o.target_ci;
  if (o.max_seconds > 0) config.max_seconds = o.max_seconds;
  if (o.max_reps > 0) config.max_reps = o.max_reps;

  const BenchEnv env = obs::bench::capture_env();
  std::cerr << "svsim_bench: host=" << env.hostname << " threads="
            << env.threads << " clock=" << env.clock_ghz << " GHz ("
            << env.clock_source << ") governor=" << env.governor
            << (o.smoke ? " [smoke tier]" : "") << "\n";

  std::vector<CaseResult> results;
  bool any_failed = false;
  for (const BenchCase& c : cases) {
    if (!selected(c, o)) continue;
    if (o.tables)
      std::cout << "\n##### " << c.title << " — " << c.description << " ["
                << c.id << "] #####\n\n";
    CaseResult r = obs::bench::run_case(c, config, o.smoke, o.attr,
                                        o.tables ? &std::cout : nullptr);
    if (r.failed) {
      any_failed = true;
      std::cerr << "svsim_bench: case '" << c.id << "' FAILED: " << r.error
                << "\n";
    } else {
      std::cerr << "svsim_bench: " << c.id << ": " << r.records.size()
                << " records in " << r.wall_seconds << " s\n";
    }
    results.push_back(std::move(r));
  }

  if (results.empty()) {
    std::cerr << "error: no cases matched the selection\n";
    return 2;
  }

  const std::string mode = o.smoke ? "smoke" : "full";
  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << o.json_path << "' for writing\n";
      return 1;
    }
    obs::bench::write_results_json(out, env, mode, results);
    std::cerr << "svsim_bench: wrote " << o.json_path << "\n";
  }
  if (!o.jsonl_path.empty()) {
    std::ofstream out(o.jsonl_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << o.jsonl_path << "' for writing\n";
      return 1;
    }
    obs::bench::write_results_jsonl(out, env, mode, results);
    std::cerr << "svsim_bench: wrote " << o.jsonl_path << "\n";
  }
  if (!o.profile_path.empty()) {
    std::ofstream out(o.profile_path);
    if (!out.good()) {
      std::cerr << "error: cannot open '" << o.profile_path
                << "' for writing\n";
      return 1;
    }
    obs::ProfileRegistry::global().write_openmetrics(out);
    std::cerr << "svsim_bench: wrote plan-phase OpenMetrics to "
              << o.profile_path << "\n";
  }
  return any_failed ? 1 : 0;
}
