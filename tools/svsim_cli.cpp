// svsim — command-line front-end.
//
//   svsim run <circuit.qasm> [--shots N] [--backend sv|sv32|stab]
//             [--fusion W] [--blocked] [--block-qubits B] [--seed S]
//             [--trace-json FILE] [--trace] [--metrics] [--counters]
//             [--profile FILE]
//   svsim project <circuit.qasm | --qft N | --qv N D>
//             [--machine a64fx|a64fx-boost|a64fx-eco|xeon|tx2]
//             [--threads T] [--affinity compact|scatter] [--fusion W]
//             [--trace] [--drift]
//   svsim plan <circuit.qasm | --qft N | --qv N D>
//             [--ranks R] [--sched naive|remap] [--fusion W] [--blocked]
//             [--block-qubits B] [--machine NAME] [--dump-plan FILE]
//   svsim profile <circuit.qasm | --qft N | --qv N D>
//             [--ranks R] [--sched naive|remap] [--fusion W] [--blocked]
//             [--block-qubits B] [--machine NAME] [--threads T] [--seed S]
//             [--counters] [--json FILE] [--overlay FILE]
//             [--openmetrics FILE]
//   svsim timeline <circuit.qasm | --qft N | --qv N D>
//             [--ranks R] [--sched naive|remap] [--fusion W] [--blocked]
//             [--block-qubits B] [--machine NAME] [--threads T]
//             [--net tofu|edr] [--straggler NODE] [--slowdown X]
//             [--json FILE] [--trace-json FILE] [--metrics]
//   svsim transpile <circuit.qasm> [--optimize] [--basis-cx]
//             [--route-linear]
//   svsim serve [--jobs FILE] [--out FILE] [--machine NAME]
//             [--cache-bytes B] [--max-seconds S] [--threads T] [--metrics]
//   svsim machines
//
// `run` executes the circuit and prints measurement counts; `project`
// prints the modeled performance/power report for the chosen machine
// (`--drift` also runs the circuit for real and prints the modeled-vs-
// measured comparison); `plan` compiles the circuit into the ExecutionPlan
// IR (single-node, or distributed over --ranks R) and prints the phase
// summary, optionally dumping the plan JSON for scripts/check_plan_schema.py
// (`--timeline FILE` also records the makespan timeline artifact);
// `profile` executes the compiled plan with the phase profiler riding
// sv::run_plan and prints/writes the measured-vs-modeled ProfileReport
// (scripts/check_profile_schema.py validates the --json artifact);
// `timeline` records the event-driven makespan simulation per rank, prints
// the critical-path attribution and what-if sensitivity, and writes the
// timeline JSON artifact (scripts/check_timeline_schema.py validates it)
// plus a multi-lane Chrome trace; `transpile` prints the rewritten circuit
// as OpenQASM; `serve` runs the compile-once serve-many job loop — one JSON
// job per input line, one JSON result line per job plus a summary line
// (docs/SERVICE.md specifies the schema, scripts/check_service_schema.py
// validates a captured session).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/table.hpp"
#include "dist/dist_plan.hpp"
#include "dist/dist_sim.hpp"
#include "dist/timeline.hpp"
#include "machine/cache_probe.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "perf/critical_path.hpp"
#include "perf/power_model.hpp"
#include "perf/profile_report.hpp"
#include "perf/report.hpp"
#include "sv/engine.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "qc/routing.hpp"
#include "qc/transpile.hpp"
#include "stab/stabilizer.hpp"
#include "sv/plan.hpp"
#include "sv/simd/simd.hpp"
#include "sv/simulator.hpp"
#include "svc/service.hpp"

using namespace svsim;

namespace {

/// Declarative option table: every flag the CLI accepts, whether it
/// consumes the next token, and its help line. parse_args() rejects
/// anything not listed here, so a new flag that is added to a command but
/// not declared fails loudly instead of silently mis-parsing.
struct OptionSpec {
  const char* name;
  bool takes_value;
  /// `--qv N [D]`: may consume a second, numeric token (circuit depth).
  bool optional_second_numeric;
  const char* help;
};

constexpr OptionSpec kOptionSpecs[] = {
    {"shots", true, false, "number of measurement shots (run)"},
    {"backend", true, false, "sv | sv32 | stab (run)"},
    {"precision", true, false,
     "f64 | f32 amplitude precision (run/plan/profile/serve)"},
    {"simd", true, false,
     "force the kernel backend: scalar|generic|avx2|neon|sve (default: "
     "SVSIM_SIMD or runtime CPU detection)"},
    {"fusion", true, false, "enable gate fusion with max width W"},
    {"blocked", false, false, "cache-blocked sweep execution (run)"},
    {"block-qubits", true, false, "block size in qubits, 0 = auto (run)"},
    {"seed", true, false, "RNG seed"},
    {"machine", true, false, "machine model name (project)"},
    {"threads", true, false, "modeled thread count (project)"},
    {"affinity", true, false, "compact | scatter (project)"},
    {"qft", true, false, "use a QFT circuit of N qubits"},
    {"qv", true, true, "use a quantum-volume circuit of N qubits [depth D]"},
    {"ranks", true, false, "rank count (power of two) for `plan`"},
    {"sched", true, false, "naive | remap exchange scheduler (plan)"},
    {"dump-plan", true, false, "write the plan JSON to FILE ('-' = stdout)"},
    {"trace", false, false, "print the per-gate trace table"},
    {"trace-json", true, false, "write Chrome trace-event JSON to FILE (run)"},
    {"metrics", false, false, "print the runtime metrics registry (run)"},
    {"counters", false, false, "sample hardware counters around the run"},
    {"drift", false, false, "print modeled-vs-measured drift (project)"},
    {"profile", true, false,
     "profile the run's plan phases and write the report JSON to FILE (run)"},
    {"json", true, false, "write the profile report JSON to FILE (profile)"},
    {"overlay", true, false,
     "write the Chrome-trace phase overlay to FILE (profile)"},
    {"openmetrics", true, false,
     "dump the cumulative profile registry to FILE (profile)"},
    {"net", true, false, "tofu | edr interconnect model (timeline)"},
    {"straggler", true, false, "straggling node index (timeline)"},
    {"slowdown", true, false, "straggler compute slowdown factor (timeline)"},
    {"timeline", true, false,
     "record the makespan timeline and write the artifact JSON to FILE "
     "(plan/profile)"},
    {"jobs", true, false, "read job lines from FILE instead of stdin (serve)"},
    {"out", true, false, "write result lines to FILE instead of stdout (serve)"},
    {"cache-bytes", true, false, "plan-cache byte budget (serve)"},
    {"max-seconds", true, false,
     "admission ceiling on modeled compute seconds per job (serve)"},
    {"optimize", false, false, "run the gate-level optimizer (transpile)"},
    {"basis-cx", false, false, "decompose to the CX basis (transpile)"},
    {"route-linear", false, false, "route for linear connectivity (transpile)"},
};

const OptionSpec* find_option(const std::string& name) {
  for (const OptionSpec& spec : kOptionSpecs)
    if (name == spec.name) return &spec;
  return nullptr;
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.push_back(a);
      continue;
    }
    const std::string name = a.substr(2);
    const OptionSpec* spec = find_option(name);
    require(spec != nullptr, "unknown option '--" + name + "'");
    if (!spec->takes_value) {
      args.options[name] = "";
      continue;
    }
    require(i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0,
            "option '--" + name + "' requires a value");
    args.options[name] = argv[++i];
    if (spec->optional_second_numeric && i + 1 < argc &&
        std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
      args.options[name + "_depth"] = argv[++i];
    }
  }
  return args;
}

machine::MachineSpec machine_by_name(const std::string& name) {
  if (name == "a64fx") return machine::MachineSpec::a64fx();
  if (name == "a64fx-boost") return machine::MachineSpec::a64fx_boost();
  if (name == "a64fx-eco") return machine::MachineSpec::a64fx_eco();
  if (name == "fx700") return machine::MachineSpec::a64fx_fx700();
  if (name == "xeon") return machine::MachineSpec::xeon_6148_dual();
  if (name == "tx2") return machine::MachineSpec::thunderx2_dual();
  throw Error("unknown machine '" + name +
              "' (try a64fx, a64fx-boost, a64fx-eco, fx700, xeon, tx2)");
}

/// --precision: amplitude scalar size in bytes (f64 default). `run` also
/// honors the legacy `--backend sv32` spelling; both reach the same
/// Simulator<float> path.
unsigned element_bytes_from_args(const Args& args) {
  const std::string p = args.get("precision", "f64");
  if (p == "f64") return 8;
  if (p == "f32") return 4;
  throw Error("unknown precision '" + p + "' (f64, f32)");
}

qc::Circuit load_circuit(const Args& args) {
  if (args.flag("qft"))
    return qc::qft(static_cast<unsigned>(std::stoul(args.get("qft", "20"))));
  if (args.flag("qv")) {
    const auto n = static_cast<unsigned>(std::stoul(args.get("qv", "20")));
    const auto d =
        static_cast<unsigned>(std::stoul(args.get("qv_depth", "10")));
    return qc::random_quantum_volume(n, d, 1234);
  }
  require(!args.positional.empty(),
          "expected a .qasm file (or --qft N / --qv N D)");
  return qc::parse_qasm_file(args.positional.front());
}

/// Shared by `plan`, `profile`, and `timeline`: compiles the circuit into
/// an ExecutionPlan from the --ranks/--sched/--fusion/--blocked flags.
/// `machine` (optional) sizes auto blocks. A nonzero `ranks_override`
/// replaces --ranks (the timeline what-if recompiles at other widths).
sv::ExecutionPlan compile_plan_from_args(const Args& args,
                                         const qc::Circuit& circuit,
                                         const machine::MachineSpec* machine,
                                         std::uint64_t ranks_override = 0) {
  const auto ranks = ranks_override != 0
                         ? ranks_override
                         : std::stoull(args.get("ranks", "1"));
  require(ranks >= 1 && (ranks & (ranks - 1)) == 0,
          "--ranks must be a power of two");
  const unsigned node_qubits = ranks > 1 ? ilog2(ranks) : 0;

  sv::PlanOptions po;
  if (args.flag("fusion")) {
    po.fusion = true;
    po.fusion_width =
        static_cast<unsigned>(std::stoul(args.get("fusion", "3")));
  }
  if (args.flag("blocked") || args.flag("block-qubits")) {
    po.blocking = true;
    po.block_qubits =
        static_cast<unsigned>(std::stoul(args.get("block-qubits", "0")));
  }
  po.machine = machine;
  // f32 amplitudes halve the element footprint, so auto-sized blocks go
  // twice as deep for the same cache budget; the fingerprint (svc) and
  // plan JSON carry amp_bytes so precisions never mix.
  po.amp_bytes = 2 * element_bytes_from_args(args);

  sv::ExecutionPlan plan;
  if (node_qubits == 0) {
    plan = sv::compile_plan(circuit, po);
  } else {
    dist::DistExecOptions dopts;
    const std::string sched = args.get("sched", "remap");
    require(sched == "naive" || sched == "remap",
            "--sched must be naive or remap");
    dopts.scheduler = sched == "naive" ? dist::CommScheduler::Naive
                                       : dist::CommScheduler::Remap;
    dopts.plan = po;
    plan = dist::compile_distributed(circuit, node_qubits, dopts);
  }
  plan.validate();
  return plan;
}

dist::InterconnectSpec interconnect_by_name(const std::string& name) {
  if (name == "tofu") return dist::InterconnectSpec::tofu_d();
  if (name == "edr") return dist::InterconnectSpec::infiniband_edr();
  throw Error("unknown interconnect '" + name + "' (try tofu, edr)");
}

dist::StragglerConfig straggler_from_args(const Args& args) {
  dist::StragglerConfig s;
  if (args.flag("straggler")) {
    s.node = std::stoull(args.get("straggler", "0"));
    s.slowdown = std::stod(args.get("slowdown", "2"));
  }
  return s;
}

/// Records `plan`'s makespan timeline and writes the versioned JSON
/// artifact (per-rank events + critical path + what-if) to `path`
/// ('-' = stdout). Shared by `timeline --json`, `plan --timeline`, and
/// `profile --timeline`.
void write_timeline_artifact(const sv::ExecutionPlan& plan,
                             const machine::MachineSpec& m,
                             const machine::ExecConfig& cfg,
                             const dist::InterconnectSpec& net,
                             const dist::StragglerConfig& straggler,
                             const std::string& path) {
  const dist::Timeline tl = dist::record_timeline(plan, m, cfg, net, straggler);
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  const auto whatif = perf::whatif_sensitivity(tl);
  if (path == "-") {
    perf::write_timeline_json(tl, cp, whatif, std::cout);
    return;
  }
  std::ofstream out(path);
  require(out.good(), "cannot open '" + path + "' for writing");
  perf::write_timeline_json(tl, cp, whatif, out);
  std::cerr << "wrote timeline artifact (" << tl.num_ranks() << " ranks, "
            << tl.total_events() << " events) to " << path << "\n";
}

/// Prints the profile report's tables and warnings, shared by `profile`
/// and `run --profile`.
void print_profile_report(const perf::ProfileReport& report) {
  perf::profile_env_table(report).print(std::cout);
  perf::profile_phase_table(report).print(std::cout);
  perf::profile_attribution_table(report).print(std::cout);
  perf::drift_phase_table(report).print(std::cout);
  if (report.env.cache_budget_warning)
    std::cerr << "warning: probed per-core cache budget ("
              << (report.env.probed_cache_budget_bytes >> 10)
              << " KiB) disagrees with the MachineSpec declaration ("
              << (report.env.declared_cache_budget_bytes >> 10)
              << " KiB) by more than 25%; block sizing may be off\n";
  if (report.partial)
    std::cerr << "warning: tracer rings overflowed mid-run; the report is "
                 "marked partial\n";
}

int cmd_run(const Args& args) {
  qc::Circuit circuit = load_circuit(args);
  const auto shots =
      static_cast<std::size_t>(std::stoull(args.get("shots", "1024")));
  const std::string backend = args.get("backend", "sv");

  if (backend == "stab") {
    Xoshiro256 rng(std::stoull(args.get("seed", "1")));
    std::map<std::uint64_t, std::size_t> counts;
    // Strip measures; stabilizer measures every qubit per shot.
    qc::Circuit unitary(circuit.num_qubits());
    for (const auto& g : circuit.gates())
      if (g.is_unitary_op() && g.kind != qc::GateKind::BARRIER)
        unitary.append(g);
    for (std::size_t s = 0; s < shots; ++s) {
      stab::StabilizerState state = stab::run_clifford(unitary);
      std::uint64_t key = 0;
      for (unsigned q = 0; q < circuit.num_qubits(); ++q)
        if (state.measure(q, rng)) key |= std::uint64_t{1} << q;
      ++counts[key];
    }
    for (const auto& [bits, count] : counts)
      std::cout << bits << " : " << count << "\n";
    return 0;
  }

  sv::SimulatorOptions opts;
  opts.seed = std::stoull(args.get("seed", "1"));
  if (args.flag("fusion")) {
    opts.fusion = true;
    opts.fusion_width =
        static_cast<unsigned>(std::stoul(args.get("fusion", "3")));
  }
  if (args.flag("blocked") || args.flag("block-qubits")) {
    opts.blocking = true;
    opts.block_qubits =
        static_cast<unsigned>(std::stoul(args.get("block-qubits", "0")));
  }
  if (circuit.is_unitary()) circuit.measure_all();
  auto print_counts = [&](const auto& counts) {
    for (const auto& [bits, count] : counts) {
      std::string label;
      for (unsigned b = circuit.num_clbits(); b-- > 0;)
        label += ((bits >> b) & 1) ? '1' : '0';
      std::cout << label << " : " << count << "\n";
    }
  };

  const bool want_trace =
      args.flag("trace") || args.flag("trace-json");
  obs::Tracer& tracer = obs::Tracer::global();
  if (want_trace) {
    tracer.clear();
    tracer.enable();
  }
  if (args.flag("metrics")) {
    obs::MetricsRegistry::global().reset();
    ThreadPool::global().reset_stats();
    sv::simd::publish_metrics();
  }
  std::optional<obs::HwCounterScope> counters;
  if (args.flag("counters")) counters.emplace();

  // --profile: ride the plan executor with the phase profiler and capture
  // the compiled plans so measured samples can be joined with the model.
  std::optional<obs::Profiler> profiler;
  std::optional<sv::PlanCaptureScope> capture;
  if (args.flag("profile")) {
    profiler.emplace();
    profiler->install();
    capture.emplace();
  }

  require(backend == "sv" || backend == "sv32",
          "unknown backend '" + backend + "' (sv, sv32, stab)");
  const bool f32 = backend == "sv32" || element_bytes_from_args(args) == 4;
  if (f32) {
    sv::Simulator<float> sim(opts);
    print_counts(sim.sample_counts(circuit, shots));
  } else {
    sv::Simulator<double> sim(opts);
    print_counts(sim.sample_counts(circuit, shots));
  }

  if (profiler) {
    profiler->uninstall();
    const std::vector<obs::RunProfile> runs = profiler->runs();
    const std::vector<sv::ExecutionPlan> plans = capture->plans();
    capture.reset();
    require(!runs.empty() && !plans.empty(),
            "--profile: the run executed no plans to profile");
    // The most recent run and plan always correspond, whatever the shot
    // strategy (single sampled run or per-shot trajectories) did.
    const auto m = machine_by_name(args.get("machine", "a64fx"));
    machine::ExecConfig cfg;
    if (args.flag("threads"))
      cfg.threads =
          static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    cfg.element_bytes = f32 ? 4 : 8;
    cfg.vector_bits = sv::simd::effective_vector_bits(cfg.element_bytes);
    const perf::ProfileReport report =
        perf::build_profile_report(runs.back(), plans.back(), m, cfg);
    const std::string path = args.get("profile", "profile.json");
    std::ofstream out(path);
    require(out.good(), "cannot open '" + path + "' for writing");
    perf::write_profile_json(report, out);
    std::cerr << "svsim: wrote profile report (" << report.phases.size()
              << " phases, drift x" << report.drift_ratio() << ") to " << path
              << "\n";
    if (report.partial)
      std::cerr << "warning: tracer rings overflowed mid-run; the profile "
                   "report is marked partial\n";
  }
  if (counters) obs::hw_counter_table(counters->stop()).print(std::cout);
  if (want_trace) {
    tracer.disable();
    if (tracer.dropped() > 0)
      std::cerr << "warning: tracer dropped " << tracer.dropped()
                << " spans to ring wraparound; the trace is incomplete\n";
    if (args.flag("trace")) obs::span_table(tracer.collect()).print(std::cout);
    if (args.flag("trace-json")) {
      const std::string path = args.get("trace-json", "trace.json");
      std::ofstream out(path);
      require(out.good(), "cannot open '" + path + "' for writing");
      tracer.write_chrome_json(out);
      std::cerr << "wrote " << tracer.collect().size() << " spans to " << path
                << (tracer.dropped() > 0
                        ? " (" + std::to_string(tracer.dropped()) +
                              " dropped to ring wraparound)"
                        : "")
                << "\n";
    }
  }
  if (args.flag("metrics")) {
    const PoolStats pool = ThreadPool::global().stats();
    auto& registry = obs::MetricsRegistry::global();
    registry.gauge("pool.parallel_regions")
        .set(static_cast<double>(pool.parallel_regions));
    registry.gauge("pool.inline_regions")
        .set(static_cast<double>(pool.inline_regions));
    registry.gauge("pool.items").set(static_cast<double>(pool.items));
    registry.table().print(std::cout);
    if (want_trace)
      obs::kernel_bandwidth_table(tracer.collect()).print(std::cout);
  }
  return 0;
}

int cmd_project(const Args& args) {
  const qc::Circuit circuit = load_circuit(args);
  const auto m = machine_by_name(args.get("machine", "a64fx"));
  machine::ExecConfig cfg;
  if (args.flag("threads"))
    cfg.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
  if (args.get("affinity", "compact") == "scatter")
    cfg.affinity = machine::Affinity::Scatter;
  perf::PerfOptions opts;
  if (args.flag("fusion")) {
    opts.fusion = true;
    opts.fusion_width =
        static_cast<unsigned>(std::stoul(args.get("fusion", "3")));
  }
  opts.record_trace = args.flag("trace") || args.flag("drift");

  const auto report = perf::simulate_circuit(circuit, m, cfg, opts);
  perf::summary_table(report).print(std::cout);
  perf::kernel_breakdown_table(report).print(std::cout);
  if (args.flag("trace")) perf::trace_table(report).print(std::cout);
  const auto power = perf::estimate_power(circuit, m, cfg, opts);
  perf::power_table({{m.name, power}}).print(std::cout);

  if (args.flag("drift")) {
    // Execute the circuit for real under the tracer and join the measured
    // spans against the prediction. The comparison is honest only when the
    // modeled machine resembles the host; the ratio column quantifies it.
    sv::SimulatorOptions sopts;
    sopts.fusion = opts.fusion;
    sopts.fusion_width = opts.fusion_width;
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable();
    obs::Profiler profiler;
    profiler.install();
    sv::PlanCaptureScope capture;
    sv::Simulator<double> sim(sopts);
    sim.run(circuit);
    profiler.uninstall();
    tracer.disable();
    const auto drift =
        perf::drift_report(report, tracer.collect(), tracer.dropped());
    perf::drift_table(drift).print(std::cout);
    // Per-phase section: the same drift attributed to the ExecutionPlan
    // phases the run actually executed.
    const auto runs = profiler.runs();
    const auto plans = capture.plans();
    if (!runs.empty() && runs.size() == plans.size())
      perf::drift_phase_table(
          perf::build_profile_report(runs.back(), plans.back(), m, cfg))
          .print(std::cout);
    if (drift.partial())
      std::cerr << "warning: tracer dropped " << drift.dropped_spans
                << " spans to ring wraparound; the drift join is partial\n";
    if (drift.orphan_spans > 0 || drift.orphan_model > 0)
      std::cerr << "warning: " << drift.orphan_spans << " measured / "
                << drift.orphan_model
                << " modeled gates had no join partner\n";
  }
  return 0;
}

int cmd_plan(const Args& args) {
  const qc::Circuit circuit = load_circuit(args);
  std::optional<machine::MachineSpec> m;
  if (args.flag("machine")) m = machine_by_name(args.get("machine", "a64fx"));
  const sv::ExecutionPlan plan =
      compile_plan_from_args(args, circuit, m ? &*m : nullptr);

  std::size_t kind_count[4] = {0, 0, 0, 0};
  for (const auto& phase : plan.phases)
    ++kind_count[static_cast<std::size_t>(phase.kind)];

  Table t("Execution plan",
          {"qubits", "ranks", "block_q", "phases", "windows", "sweeps",
           "dense", "exchanges", "xGB/rank", "traversals", "gates/trav"});
  t.add_row({static_cast<std::int64_t>(plan.num_qubits),
             static_cast<std::int64_t>(plan.num_ranks()),
             static_cast<std::int64_t>(plan.block_qubits),
             static_cast<std::int64_t>(plan.phases.size()),
             static_cast<std::int64_t>(plan.num_windows()),
             static_cast<std::int64_t>(
                 kind_count[static_cast<std::size_t>(sv::PhaseKind::LocalSweep)]),
             static_cast<std::int64_t>(
                 kind_count[static_cast<std::size_t>(sv::PhaseKind::DenseGate)]),
             static_cast<std::int64_t>(plan.num_exchanges),
             plan.exchange_bytes_per_rank * 1e-9,
             static_cast<std::int64_t>(plan.traversals()),
             plan.gates_per_traversal()});
  t.print(std::cout);

  Table g("Gate placement",
          {"sweep_gates", "dense_gates", "free_gates", "measure_gates"});
  g.add_row({static_cast<std::int64_t>(plan.sweep_gates),
             static_cast<std::int64_t>(plan.dense_gates),
             static_cast<std::int64_t>(plan.free_gates),
             static_cast<std::int64_t>(plan.measure_gates)});
  g.print(std::cout);

  if (args.flag("dump-plan")) {
    const std::string path = args.get("dump-plan", "-");
    if (path == "-") {
      sv::write_plan_json(plan, std::cout);
    } else {
      std::ofstream out(path);
      require(out.good(), "cannot open '" + path + "' for writing");
      sv::write_plan_json(plan, out);
    }
  }
  if (args.flag("timeline")) {
    // The makespan model needs a concrete machine; default like the other
    // modeled commands when --machine was omitted.
    const machine::MachineSpec tm =
        m ? *m : machine_by_name(args.get("machine", "a64fx"));
    machine::ExecConfig cfg;
    if (args.flag("threads"))
      cfg.threads =
          static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    write_timeline_artifact(plan, tm, cfg,
                            interconnect_by_name(args.get("net", "tofu")),
                            straggler_from_args(args),
                            args.get("timeline", "-"));
  }
  return 0;
}

int cmd_profile(const Args& args) {
  const qc::Circuit circuit = load_circuit(args);
  const auto m = machine_by_name(args.get("machine", "a64fx"));
  machine::ExecConfig cfg;
  if (args.flag("threads"))
    cfg.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
  cfg.element_bytes = element_bytes_from_args(args);
  cfg.vector_bits = sv::simd::effective_vector_bits(cfg.element_bytes);
  const sv::ExecutionPlan plan = compile_plan_from_args(args, circuit, &m);

  // Execute the plan for real with the profiler riding run_plan. The
  // tracer runs too so the Chrome overlay has gate spans to align with.
  obs::ProfilerOptions popts;
  popts.hw_counters = args.flag("counters");
  obs::Profiler profiler(popts);
  profiler.install();
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();

  sv::SimulatorOptions sopts;
  sopts.seed = std::stoull(args.get("seed", "1"));
  if (cfg.element_bytes == 4) {
    sv::Simulator<float> sim(sopts);
    sv::StateVector<float> state(circuit.num_qubits());
    sim.run_plan(state, plan);
  } else {
    sv::Simulator<double> sim(sopts);
    sv::StateVector<double> state(circuit.num_qubits());
    sim.run_plan(state, plan);
  }

  // Price the exchanges on the modeled interconnect while the profiler is
  // still installed: time_plan annotates the Exchange samples with the
  // simulated per-hop wire time.
  if (plan.node_qubits > 0)
    dist::time_plan(plan, m, cfg, dist::InterconnectSpec::tofu_d());

  tracer.disable();
  profiler.uninstall();
  const std::vector<obs::RunProfile> runs = profiler.runs();
  require(!runs.empty(), "profile: the run produced no profiled executions");
  const perf::ProfileReport report =
      perf::build_profile_report(runs.back(), plan, m, cfg);

  print_profile_report(report);

  if (args.flag("json")) {
    const std::string path = args.get("json", "-");
    if (path == "-") {
      perf::write_profile_json(report, std::cout);
    } else {
      std::ofstream out(path);
      require(out.good(), "cannot open '" + path + "' for writing");
      perf::write_profile_json(report, out);
      std::cerr << "wrote profile report to " << path << "\n";
    }
  }
  if (args.flag("overlay")) {
    const std::string path = args.get("overlay", "profile_trace.json");
    std::ofstream out(path);
    require(out.good(), "cannot open '" + path + "' for writing");
    obs::write_profile_chrome_json(out, tracer.collect(), runs);
    std::cerr << "wrote phase overlay to " << path << "\n";
  }
  if (args.flag("openmetrics")) {
    const std::string path = args.get("openmetrics", "-");
    if (path == "-") {
      obs::ProfileRegistry::global().write_openmetrics(std::cout);
    } else {
      std::ofstream out(path);
      require(out.good(), "cannot open '" + path + "' for writing");
      obs::ProfileRegistry::global().write_openmetrics(out);
    }
  }
  if (args.flag("timeline"))
    write_timeline_artifact(plan, m, cfg,
                            interconnect_by_name(args.get("net", "tofu")),
                            straggler_from_args(args),
                            args.get("timeline", "-"));
  tracer.clear();
  return 0;
}

int cmd_timeline(const Args& args) {
  const qc::Circuit circuit = load_circuit(args);
  const auto m = machine_by_name(args.get("machine", "a64fx"));
  machine::ExecConfig cfg;
  if (args.flag("threads"))
    cfg.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
  const sv::ExecutionPlan plan = compile_plan_from_args(args, circuit, &m);
  const dist::InterconnectSpec net =
      interconnect_by_name(args.get("net", "tofu"));
  const dist::StragglerConfig straggler = straggler_from_args(args);
  if (args.flag("metrics")) {
    obs::MetricsRegistry::global().reset();
    sv::simd::publish_metrics();
  }

  const dist::Timeline tl = dist::record_timeline(plan, m, cfg, net, straggler);
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  const std::vector<perf::WhatIfResult> whatif = perf::whatif_sensitivity(tl);

  perf::timeline_summary_table(tl, cp).print(std::cout);
  perf::rank_attribution_table(cp).print(std::cout);
  perf::critical_path_table(cp).print(std::cout);
  perf::whatif_table(whatif).print(std::cout);

  // Knobs the replay cannot price — they change the plan (rank count) or
  // the whole cost model (node throughput) — are recompiled/re-recorded.
  Table model("what-if (recompiled / remodeled)",
              {"scenario", "makespan [us]", "speedup"});
  auto add_scenario = [&](const std::string& name, double makespan) {
    model.add_row({name, makespan * 1e6,
                   makespan > 0.0 ? tl.makespan_seconds / makespan : 0.0});
  };
  const std::uint64_t ranks = plan.num_ranks();
  if (ilog2(ranks * 2) + 2 <= circuit.num_qubits()) {
    const sv::ExecutionPlan wide =
        compile_plan_from_args(args, circuit, &m, ranks * 2);
    add_scenario("ranks x2 (" + std::to_string(ranks * 2) + ", recompiled)",
                 dist::event_driven_makespan(wide, m, cfg, net, straggler));
  }
  if (ranks >= 2) {
    const sv::ExecutionPlan narrow =
        compile_plan_from_args(args, circuit, &m, ranks / 2);
    add_scenario("ranks /2 (" + std::to_string(ranks / 2) + ", recompiled)",
                 dist::event_driven_makespan(narrow, m, cfg, net, straggler));
  }
  add_scenario(
      "node x2 (clock+bandwidth, remodeled)",
      dist::event_driven_makespan(plan, m.scaled(2.0, 2.0), cfg, net,
                                  straggler));
  model.print(std::cout);

  if (args.flag("json")) {
    const std::string path = args.get("json", "-");
    if (path == "-") {
      perf::write_timeline_json(tl, cp, whatif, std::cout);
    } else {
      std::ofstream out(path);
      require(out.good(), "cannot open '" + path + "' for writing");
      perf::write_timeline_json(tl, cp, whatif, out);
      std::cerr << "wrote timeline artifact to " << path << "\n";
    }
  }
  if (args.flag("trace-json")) {
    const std::string path = args.get("trace-json", "timeline_trace.json");
    std::ofstream out(path);
    require(out.good(), "cannot open '" + path + "' for writing");
    dist::write_timeline_chrome_json(out, tl);
    std::cerr << "wrote timeline Chrome trace (" << tl.num_ranks()
              << " rank lanes) to " << path << "\n";
  }
  if (args.flag("metrics")) obs::MetricsRegistry::global().table().print(std::cout);
  return 0;
}

int cmd_transpile(const Args& args) {
  qc::Circuit circuit = load_circuit(args);
  if (args.flag("basis-cx")) circuit = qc::decompose_to_cx_basis(circuit);
  if (args.flag("optimize")) circuit = qc::optimize(circuit);
  if (args.flag("route-linear")) {
    const auto routed = qc::route_linear(circuit);
    std::cerr << "inserted " << routed.swaps_inserted << " swaps\n";
    circuit = routed.circuit;
  }
  std::cout << qc::to_qasm(circuit);
  return 0;
}

int cmd_serve(const Args& args) {
  svc::ServiceOptions opts;
  opts.machine = machine_by_name(args.get("machine", "a64fx"));
  if (args.flag("cache-bytes"))
    opts.cache_bytes = std::stoull(args.get("cache-bytes", "0"));
  if (args.flag("max-seconds"))
    opts.max_modeled_seconds = std::stod(args.get("max-seconds", "0"));
  if (args.flag("threads")) {
    // For serve, --threads T doubles as the worker count: T executor
    // threads pull jobs concurrently (each with a ThreadPool slice), and
    // the admission model keeps pricing jobs at T modeled threads.
    opts.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    opts.workers = std::max(1u, opts.threads);
  }
  if (args.flag("precision")) {
    element_bytes_from_args(args);  // validates the spelling
    opts.default_precision = args.get("precision", "f64");
  }
  if (args.flag("metrics")) {
    obs::MetricsRegistry::global().reset();
    sv::simd::publish_metrics();
  }
  svc::Service service(opts);

  std::ifstream jobs_file;
  std::istream* in = &std::cin;
  if (args.flag("jobs")) {
    const std::string path = args.get("jobs", "-");
    if (path != "-") {
      jobs_file.open(path);
      require(jobs_file.good(), "cannot open '" + path + "' for reading");
      in = &jobs_file;
    }
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (args.flag("out")) {
    const std::string path = args.get("out", "-");
    if (path != "-") {
      out_file.open(path);
      require(out_file.good(), "cannot open '" + path + "' for writing");
      out = &out_file;
    }
  }

  const svc::ServeStats stats = svc::serve_session(*in, *out, service);
  std::cerr << "served " << stats.jobs << " jobs (" << stats.ok << " ok, "
            << stats.errors << " errors, " << stats.shots << " shots) on "
            << stats.workers << " worker(s); plan cache: "
            << service.cache().hits()
            << " hits, " << service.cache().misses() << " misses, "
            << service.cache().evictions() << " evictions\n";
  // Metrics go to stderr so the stdout stream stays pure line-JSON.
  if (args.flag("metrics"))
    obs::MetricsRegistry::global().table().print(std::cerr);
  return 0;
}

int cmd_machines() {
  Table t("Machine library",
          {"name", "cores", "GHz", "SIMD", "peak_GFLOPs", "STREAM_GBs"});
  for (const auto& m :
       {machine::MachineSpec::a64fx(), machine::MachineSpec::a64fx_boost(),
        machine::MachineSpec::a64fx_eco(),
        machine::MachineSpec::a64fx_fx700(),
        machine::MachineSpec::xeon_6148_dual(),
        machine::MachineSpec::thunderx2_dual()}) {
    t.add_row({m.name, static_cast<std::int64_t>(m.total_cores()),
               m.clock_ghz, static_cast<std::int64_t>(m.simd_bits),
               m.peak_gflops(), m.stream_bandwidth_gbps()});
  }
  t.print(std::cout);
  return 0;
}

void usage() {
  std::cerr <<
      "usage: svsim <command> [args]\n"
      "(every command also accepts --simd scalar|generic|avx2|neon|sve to\n"
      " force the kernel backend, and run/plan/profile/serve accept\n"
      " --precision f64|f32 for the amplitude precision)\n"
      "  run <file.qasm|--qft N|--qv N D> [--shots N] [--backend sv|sv32|stab]\n"
      "      [--fusion W] [--blocked] [--block-qubits B] [--seed S]\n"
      "      [--trace-json FILE] [--trace] [--metrics] [--counters]\n"
      "  project <file.qasm|--qft N|--qv N D> [--machine NAME] [--threads T]\n"
      "      [--affinity compact|scatter] [--fusion W] [--trace] [--drift]\n"
      "  plan <file.qasm|--qft N|--qv N D> [--ranks R] [--sched naive|remap]\n"
      "      [--fusion W] [--blocked] [--block-qubits B] [--machine NAME]\n"
      "      [--dump-plan FILE] [--timeline FILE]\n"
      "  profile <file.qasm|--qft N|--qv N D> [--ranks R] [--sched naive|remap]\n"
      "      [--fusion W] [--blocked] [--block-qubits B] [--machine NAME]\n"
      "      [--threads T] [--seed S] [--counters] [--json FILE]\n"
      "      [--overlay FILE] [--openmetrics FILE] [--timeline FILE]\n"
      "  timeline <file.qasm|--qft N|--qv N D> [--ranks R] [--sched naive|remap]\n"
      "      [--fusion W] [--blocked] [--block-qubits B] [--machine NAME]\n"
      "      [--threads T] [--net tofu|edr] [--straggler NODE] [--slowdown X]\n"
      "      [--json FILE] [--trace-json FILE] [--metrics]\n"
      "  transpile <file.qasm|--qft N> [--optimize] [--basis-cx] [--route-linear]\n"
      "  serve [--jobs FILE] [--out FILE] [--machine NAME] [--cache-bytes B]\n"
      "      [--max-seconds S] [--threads T (T serve workers)]\n"
      "      [--precision f64|f32] [--metrics]\n"
      "  machines\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    // --simd pins the kernel backend for everything the command executes
    // (run, profile, serve jobs, ...); an unavailable backend is a hard
    // error here, unlike the best-effort SVSIM_SIMD environment override.
    if (args.flag("simd")) {
      const std::string name = args.get("simd", "");
      require(sv::simd::select_backend(name),
              "SIMD backend '" + name +
                  "' is not available on this CPU/build (see `svsim "
                  "machines`; scalar and generic always are)");
    }
    if (cmd == "run") return cmd_run(args);
    if (cmd == "project") return cmd_project(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "transpile") return cmd_transpile(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "machines") return cmd_machines();
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
