// svsim — command-line front-end.
//
//   svsim run <circuit.qasm> [--shots N] [--backend sv|sv32|stab]
//             [--fusion W] [--seed S]
//   svsim project <circuit.qasm | --qft N | --qv N D>
//             [--machine a64fx|a64fx-boost|a64fx-eco|xeon|tx2]
//             [--threads T] [--affinity compact|scatter] [--fusion W]
//             [--trace]
//   svsim transpile <circuit.qasm> [--optimize] [--basis-cx]
//             [--route-linear]
//   svsim machines
//
// `run` executes the circuit and prints measurement counts; `project`
// prints the modeled performance/power report for the chosen machine;
// `transpile` prints the rewritten circuit as OpenQASM.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "perf/power_model.hpp"
#include "perf/report.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "qc/routing.hpp"
#include "qc/transpile.hpp"
#include "stab/stabilizer.hpp"
#include "sv/simulator.hpp"

using namespace svsim;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string name = a.substr(2);
      // Flags with known values take the next token; bare flags don't.
      const bool takes_value =
          name == "shots" || name == "backend" || name == "fusion" ||
          name == "seed" || name == "machine" || name == "threads" ||
          name == "affinity" || name == "qft" || name == "qv";
      if (takes_value && i + 1 < argc) {
        args.options[name] = argv[++i];
        if (name == "qv" && i + 1 < argc &&
            std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
          args.options["qv_depth"] = argv[++i];
        }
      } else {
        args.options[name] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

machine::MachineSpec machine_by_name(const std::string& name) {
  if (name == "a64fx") return machine::MachineSpec::a64fx();
  if (name == "a64fx-boost") return machine::MachineSpec::a64fx_boost();
  if (name == "a64fx-eco") return machine::MachineSpec::a64fx_eco();
  if (name == "fx700") return machine::MachineSpec::a64fx_fx700();
  if (name == "xeon") return machine::MachineSpec::xeon_6148_dual();
  if (name == "tx2") return machine::MachineSpec::thunderx2_dual();
  throw Error("unknown machine '" + name +
              "' (try a64fx, a64fx-boost, a64fx-eco, fx700, xeon, tx2)");
}

qc::Circuit load_circuit(const Args& args) {
  if (args.flag("qft"))
    return qc::qft(static_cast<unsigned>(std::stoul(args.get("qft", "20"))));
  if (args.flag("qv")) {
    const auto n = static_cast<unsigned>(std::stoul(args.get("qv", "20")));
    const auto d =
        static_cast<unsigned>(std::stoul(args.get("qv_depth", "10")));
    return qc::random_quantum_volume(n, d, 1234);
  }
  require(!args.positional.empty(),
          "expected a .qasm file (or --qft N / --qv N D)");
  return qc::parse_qasm_file(args.positional.front());
}

int cmd_run(const Args& args) {
  qc::Circuit circuit = load_circuit(args);
  const auto shots =
      static_cast<std::size_t>(std::stoull(args.get("shots", "1024")));
  const std::string backend = args.get("backend", "sv");

  if (backend == "stab") {
    Xoshiro256 rng(std::stoull(args.get("seed", "1")));
    std::map<std::uint64_t, std::size_t> counts;
    // Strip measures; stabilizer measures every qubit per shot.
    qc::Circuit unitary(circuit.num_qubits());
    for (const auto& g : circuit.gates())
      if (g.is_unitary_op() && g.kind != qc::GateKind::BARRIER)
        unitary.append(g);
    for (std::size_t s = 0; s < shots; ++s) {
      stab::StabilizerState state = stab::run_clifford(unitary);
      std::uint64_t key = 0;
      for (unsigned q = 0; q < circuit.num_qubits(); ++q)
        if (state.measure(q, rng)) key |= std::uint64_t{1} << q;
      ++counts[key];
    }
    for (const auto& [bits, count] : counts)
      std::cout << bits << " : " << count << "\n";
    return 0;
  }

  sv::SimulatorOptions opts;
  opts.seed = std::stoull(args.get("seed", "1"));
  if (args.flag("fusion")) {
    opts.fusion = true;
    opts.fusion_width =
        static_cast<unsigned>(std::stoul(args.get("fusion", "3")));
  }
  if (circuit.is_unitary()) circuit.measure_all();
  auto print_counts = [&](const auto& counts) {
    for (const auto& [bits, count] : counts) {
      std::string label;
      for (unsigned b = circuit.num_clbits(); b-- > 0;)
        label += ((bits >> b) & 1) ? '1' : '0';
      std::cout << label << " : " << count << "\n";
    }
  };
  if (backend == "sv32") {
    sv::Simulator<float> sim(opts);
    print_counts(sim.sample_counts(circuit, shots));
  } else if (backend == "sv") {
    sv::Simulator<double> sim(opts);
    print_counts(sim.sample_counts(circuit, shots));
  } else {
    throw Error("unknown backend '" + backend + "' (sv, sv32, stab)");
  }
  return 0;
}

int cmd_project(const Args& args) {
  const qc::Circuit circuit = load_circuit(args);
  const auto m = machine_by_name(args.get("machine", "a64fx"));
  machine::ExecConfig cfg;
  if (args.flag("threads"))
    cfg.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
  if (args.get("affinity", "compact") == "scatter")
    cfg.affinity = machine::Affinity::Scatter;
  perf::PerfOptions opts;
  if (args.flag("fusion")) {
    opts.fusion = true;
    opts.fusion_width =
        static_cast<unsigned>(std::stoul(args.get("fusion", "3")));
  }
  opts.record_trace = args.flag("trace");

  const auto report = perf::simulate_circuit(circuit, m, cfg, opts);
  perf::summary_table(report).print(std::cout);
  perf::kernel_breakdown_table(report).print(std::cout);
  if (opts.record_trace) perf::trace_table(report).print(std::cout);
  const auto power = perf::estimate_power(circuit, m, cfg, opts);
  perf::power_table({{m.name, power}}).print(std::cout);
  return 0;
}

int cmd_transpile(const Args& args) {
  qc::Circuit circuit = load_circuit(args);
  if (args.flag("basis-cx")) circuit = qc::decompose_to_cx_basis(circuit);
  if (args.flag("optimize")) circuit = qc::optimize(circuit);
  if (args.flag("route-linear")) {
    const auto routed = qc::route_linear(circuit);
    std::cerr << "inserted " << routed.swaps_inserted << " swaps\n";
    circuit = routed.circuit;
  }
  std::cout << qc::to_qasm(circuit);
  return 0;
}

int cmd_machines() {
  Table t("Machine library",
          {"name", "cores", "GHz", "SIMD", "peak_GFLOPs", "STREAM_GBs"});
  for (const auto& m :
       {machine::MachineSpec::a64fx(), machine::MachineSpec::a64fx_boost(),
        machine::MachineSpec::a64fx_eco(),
        machine::MachineSpec::a64fx_fx700(),
        machine::MachineSpec::xeon_6148_dual(),
        machine::MachineSpec::thunderx2_dual()}) {
    t.add_row({m.name, static_cast<std::int64_t>(m.total_cores()),
               m.clock_ghz, static_cast<std::int64_t>(m.simd_bits),
               m.peak_gflops(), m.stream_bandwidth_gbps()});
  }
  t.print(std::cout);
  return 0;
}

void usage() {
  std::cerr <<
      "usage: svsim <command> [args]\n"
      "  run <file.qasm|--qft N|--qv N D> [--shots N] [--backend sv|sv32|stab]\n"
      "      [--fusion W] [--seed S]\n"
      "  project <file.qasm|--qft N|--qv N D> [--machine NAME] [--threads T]\n"
      "      [--affinity compact|scatter] [--fusion W] [--trace]\n"
      "  transpile <file.qasm|--qft N> [--optimize] [--basis-cx] [--route-linear]\n"
      "  machines\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "project") return cmd_project(args);
    if (cmd == "transpile") return cmd_transpile(args);
    if (cmd == "machines") return cmd_machines();
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
