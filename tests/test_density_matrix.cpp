#include "dm/density_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

namespace svsim::dm {
namespace {

using qc::Circuit;
using qc::Gate;
using qc::PauliString;

TEST(DensityMatrix, InitialStateIsPureZero) {
  DensityMatrix rho(3);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(rho.population(0), 1.0, 1e-14);
  EXPECT_THROW(DensityMatrix(0), Error);
  EXPECT_THROW(DensityMatrix(13), Error);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesPureState) {
  const Circuit c = qc::random_clifford_t(4, 40, 5);
  DensityMatrix rho(4);
  rho.apply(c);
  const auto psi = qc::dense::run(c);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  EXPECT_NEAR(rho.fidelity_with_pure(psi), 1.0, 1e-10);
  // Populations match |amplitudes|².
  for (std::uint64_t i = 0; i < psi.size(); ++i)
    EXPECT_NEAR(rho.population(i), std::norm(psi[i]), 1e-10);
}

TEST(DensityMatrix, ExpectationMatchesStateVector) {
  const Circuit c = qc::qft(4);
  DensityMatrix rho(4);
  rho.apply(c);
  sv::Simulator<double> sim;
  const auto state = sim.run(c);
  for (const std::string label : {"ZIII", "XXII", "IYZI", "ZZZZ"}) {
    const auto p = PauliString::from_label(label);
    EXPECT_NEAR(rho.expectation(p), state.expectation(p), 1e-10) << label;
  }
}

TEST(DensityMatrix, BitFlipChannelExactPopulations) {
  DensityMatrix rho(1);
  rho.apply_bit_flip(0.3, 0);
  EXPECT_NEAR(rho.population(0), 0.7, 1e-12);
  EXPECT_NEAR(rho.population(1), 0.3, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  // Mixed now: purity = 0.7² + 0.3².
  EXPECT_NEAR(rho.purity(), 0.58, 1e-12);
}

TEST(DensityMatrix, PhaseFlipKillsCoherenceKeepsPopulations) {
  DensityMatrix rho(1);
  rho.apply_gate(Gate::h(0));
  rho.apply_phase_flip(0.5, 0);  // total dephasing
  EXPECT_NEAR(rho.population(0), 0.5, 1e-12);
  EXPECT_NEAR(rho.population(1), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.expectation(PauliString::from_label("X")), 0.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingExactDecay) {
  DensityMatrix rho(1);
  rho.apply_gate(Gate::x(0));
  const double gamma = 0.25;
  rho.apply_amplitude_damping(gamma, 0);
  EXPECT_NEAR(rho.population(1), 1.0 - gamma, 1e-12);
  EXPECT_NEAR(rho.population(0), gamma, 1e-12);
  // Two applications: (1-γ)².
  rho.apply_amplitude_damping(gamma, 0);
  EXPECT_NEAR(rho.population(1), (1 - gamma) * (1 - gamma), 1e-12);
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix rho(2);
  rho.apply_gate(Gate::h(0));
  rho.apply_gate(Gate::cx(0, 1));
  for (int i = 0; i < 60; ++i) rho.apply_depolarizing(0.2, {0, 1});
  // 2 qubits: maximally mixed has purity 1/4.
  EXPECT_NEAR(rho.purity(), 0.25, 1e-3);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, KrausCompletenessPreservesTrace) {
  const Circuit c = qc::ghz(3);
  sv::NoiseModel noise;
  noise.add_depolarizing(0.07).add_amplitude_damping(0.05)
      .add_phase_flip(0.03);
  const DensityMatrix rho = run_with_noise(c, noise);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, TrajectoryAverageConvergesToExactChannel) {
  // The central validation: stochastic trajectory unraveling in the SV
  // simulator averages to the exact density-matrix channel evolution.
  const unsigned n = 3;
  const Circuit c = qc::ghz(n);
  sv::NoiseModel noise;
  noise.add_depolarizing(0.08);

  const DensityMatrix exact = run_with_noise(c, noise);

  sv::SimulatorOptions opts;
  opts.noise = noise;
  opts.seed = 77;
  sv::Simulator<double> sim(opts);
  const int trajectories = 3000;
  qc::PauliOperator zzz(n), xxx(n);
  zzz.add(1.0, "ZZZ");
  xxx.add(1.0, "XXX");
  double z_avg = 0.0, x_avg = 0.0;
  std::vector<double> pop_avg(1u << n, 0.0);
  for (int t = 0; t < trajectories; ++t) {
    const auto state = sim.run(c);
    z_avg += state.expectation(zzz);
    x_avg += state.expectation(xxx);
    for (std::uint64_t i = 0; i < pop_avg.size(); ++i)
      pop_avg[i] += state.probability(i);
  }
  z_avg /= trajectories;
  x_avg /= trajectories;
  // ~1/√3000 ≈ 2% statistical error; allow 4σ-ish.
  EXPECT_NEAR(z_avg, exact.expectation(PauliString::from_label("ZZZ")), 0.06);
  EXPECT_NEAR(x_avg, exact.expectation(PauliString::from_label("XXX")), 0.06);
  for (std::uint64_t i = 0; i < pop_avg.size(); ++i)
    EXPECT_NEAR(pop_avg[i] / trajectories, exact.population(i), 0.03)
        << "basis " << i;
}

TEST(DensityMatrix, AmplitudeDampingTrajectoriesMatchExact) {
  // Amplitude damping uses the nontrivial jump/no-jump unraveling; verify
  // its average too.
  const unsigned n = 2;
  Circuit c(n);
  c.h(0).cx(0, 1);
  sv::NoiseModel noise;
  noise.add_amplitude_damping(0.15);

  const DensityMatrix exact = run_with_noise(c, noise);
  sv::SimulatorOptions opts;
  opts.noise = noise;
  opts.seed = 3;
  sv::Simulator<double> sim(opts);
  const int trajectories = 4000;
  std::vector<double> pop(4, 0.0);
  for (int t = 0; t < trajectories; ++t) {
    const auto state = sim.run(c);
    for (std::uint64_t i = 0; i < 4; ++i) pop[i] += state.probability(i);
  }
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(pop[i] / trajectories, exact.population(i), 0.025)
        << "basis " << i;
}

TEST(DensityMatrix, SetPureRoundTrip) {
  const auto psi = qc::dense::run(qc::ghz(3));
  DensityMatrix rho(3);
  rho.set_pure(psi);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  EXPECT_NEAR(rho.fidelity_with_pure(psi), 1.0, 1e-12);
  EXPECT_NEAR(rho.population(0), 0.5, 1e-12);
  EXPECT_NEAR(rho.population(7), 0.5, 1e-12);
}

TEST(DensityMatrix, RejectsMeasurement) {
  Circuit c(2);
  c.h(0).measure(0, 0);
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply(c), Error);
  EXPECT_THROW(run_with_noise(c, sv::NoiseModel{}), Error);
}

}  // namespace
}  // namespace svsim::dm
