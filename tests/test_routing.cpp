#include "qc/routing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "qc/transpile.hpp"
#include "sv/simulator.hpp"

namespace svsim::qc {
namespace {

/// Checks routed ≡ permute(final_layout) ∘ original on states: running the
/// routed circuit gives the original state with qubits relocated to their
/// final physical slots.
void check_routing_semantics(const Circuit& original) {
  const RoutedCircuit routed = route_linear(original);
  EXPECT_TRUE(respects_linear_coupling(routed.circuit));
  const auto want = dense::run(original);
  const auto got = dense::run(routed.circuit);
  for (std::uint64_t i = 0; i < want.size(); ++i) {
    std::uint64_t j = 0;
    for (unsigned q = 0; q < original.num_qubits(); ++q)
      if ((i >> q) & 1) j |= std::uint64_t{1} << routed.final_layout[q];
    EXPECT_NEAR(std::abs(got[j] - want[i]), 0.0, 1e-10);
  }
}

TEST(Routing, AdjacentGatesPassThrough) {
  Circuit c(4);
  c.h(0).cx(0, 1).cx(2, 3).cz(1, 2);
  const RoutedCircuit r = route_linear(c);
  EXPECT_EQ(r.swaps_inserted, 0u);
  EXPECT_EQ(r.circuit.size(), c.size());
  // Identity layout.
  for (unsigned q = 0; q < 4; ++q) EXPECT_EQ(r.final_layout[q], q);
}

TEST(Routing, DistantPairGetsSwaps) {
  Circuit c(5);
  c.cx(0, 4);
  const RoutedCircuit r = route_linear(c);
  EXPECT_TRUE(respects_linear_coupling(r.circuit));
  EXPECT_EQ(r.swaps_inserted, 3u);  // move 0 next to 4
  check_routing_semantics(c);
}

TEST(Routing, SemanticsOnQft) {
  // QFT has all-to-all CPs: the classic routing stress test.
  check_routing_semantics(qft(5));
}

TEST(Routing, SemanticsOnRandomCircuits) {
  for (std::uint64_t seed : {2ull, 9ull, 17ull}) {
    check_routing_semantics(random_clifford_t(5, 40, seed));
  }
}

TEST(Routing, SemanticsAfterBasisDecomposition) {
  // 3-qubit gates must be decomposed first; the combined pipeline routes.
  Circuit c(4);
  c.h(0).ccx(0, 2, 3).swap(0, 3).cswap(1, 0, 3);
  const Circuit decomposed = decompose_to_cx_basis(c);
  check_routing_semantics(decomposed);
}

TEST(Routing, RejectsWideGates) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW(route_linear(c), Error);
}

TEST(Routing, TracksMeasurementThroughLayout) {
  // x(0); cx(0,2): logical 0 and 2 both end in |1>. The measure gates must
  // follow the qubits wherever the router moved them.
  Circuit c(3);
  c.x(0).cx(0, 2).measure(0, 0).measure(1, 1).measure(2, 2);
  const RoutedCircuit r = route_linear(c);
  EXPECT_TRUE(respects_linear_coupling(r.circuit));
  sv::Simulator<double> sim;
  sim.run(r.circuit);
  EXPECT_TRUE(sim.classical_bits()[0]);
  EXPECT_FALSE(sim.classical_bits()[1]);
  EXPECT_TRUE(sim.classical_bits()[2]);
}

TEST(Routing, SwapCountGrowsWithDistance) {
  for (unsigned span : {2u, 4u, 7u}) {
    Circuit c(8);
    c.cx(0, span);
    EXPECT_EQ(route_linear(c).swaps_inserted, span - 1);
  }
}

TEST(Routing, LayoutIsAlwaysAPermutation) {
  const Circuit c = random_clifford_t(6, 80, 33);
  const RoutedCircuit r = route_linear(c);
  std::vector<bool> seen(6, false);
  for (unsigned p : r.final_layout) {
    ASSERT_LT(p, 6u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Routing, CouplingChecker) {
  Circuit ok(3);
  ok.cx(0, 1).cx(2, 1);
  EXPECT_TRUE(respects_linear_coupling(ok));
  Circuit bad(3);
  bad.cx(0, 2);
  EXPECT_FALSE(respects_linear_coupling(bad));
  Circuit wide(3);
  wide.ccx(0, 1, 2);
  EXPECT_FALSE(respects_linear_coupling(wide));
}

}  // namespace
}  // namespace svsim::qc
