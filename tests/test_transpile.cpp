#include "qc/transpile.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"

namespace svsim::qc {
namespace {

double unitary_error(const Circuit& a, const Circuit& b) {
  return dense::circuit_unitary(a).distance(dense::circuit_unitary(b));
}

double unitary_error_up_to_phase(const Circuit& a, const Circuit& b) {
  return dense::circuit_unitary(a).distance_up_to_phase(
      dense::circuit_unitary(b));
}

// ---- ZYZ decomposition ------------------------------------------------------

TEST(Zyz, ReconstructsRandomUnitaries) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const Matrix u = Matrix::random_unitary(2, rng);
    const ZyzAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        (mat::RZ(a.beta) * mat::RY(a.gamma) * mat::RZ(a.delta)) *
        std::polar(1.0, a.alpha);
    EXPECT_LT(rebuilt.distance(u), 1e-10);
  }
}

TEST(Zyz, HandlesDiagonalAndAntiDiagonal) {
  for (const Matrix& u : {mat::Z(), mat::S(), mat::T(), mat::X(), mat::Y(),
                          Matrix::identity(2)}) {
    const ZyzAngles a = zyz_decompose(u);
    const Matrix rebuilt =
        (mat::RZ(a.beta) * mat::RY(a.gamma) * mat::RZ(a.delta)) *
        std::polar(1.0, a.alpha);
    EXPECT_LT(rebuilt.distance(u), 1e-10);
  }
}

TEST(Zyz, ToUGateMatchesUpToGlobalPhase) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 20; ++i) {
    const Matrix u = Matrix::random_unitary(2, rng);
    double phase = 0.0;
    const Gate g = zyz_to_u(0, zyz_decompose(u), &phase);
    const Matrix rebuilt = g.matrix() * std::polar(1.0, phase);
    EXPECT_LT(rebuilt.distance(u), 1e-10);
  }
}

TEST(Zyz, RejectsNonUnitary) {
  EXPECT_THROW(zyz_decompose(Matrix(2, {1, 1, 1, 1})), Error);
  EXPECT_THROW(zyz_decompose(Matrix::identity(4)), Error);
}

// ---- cancellation ------------------------------------------------------------

TEST(CancelInverses, RemovesSelfInversePairs) {
  Circuit c(2);
  c.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 0u);
}

TEST(CancelInverses, RemovesExplicitInversePairs) {
  Circuit c(1);
  c.s(0).sdg(0).t(0).tdg(0).rz(0, 0.7).rz(0, -0.7);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 0u);
}

TEST(CancelInverses, KeepsNonCancellingGates) {
  Circuit c(2);
  c.h(0).t(0).h(0);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 3u);
}

TEST(CancelInverses, InterveningGateOnSharedQubitBlocks) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(0);  // CX touches qubit 0: the two H must survive
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 3u);
}

TEST(CancelInverses, IndependentQubitGatesDoNotBlock) {
  Circuit c(2);
  c.h(0).x(1).h(0);  // X(1) is unrelated: H pair cancels
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.gate(0).kind, GateKind::X);
}

TEST(CancelInverses, BarrierBlocksCancellation) {
  Circuit c(1);
  c.h(0).barrier().h(0);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 3u);
}

TEST(CancelInverses, MeasureBlocksCancellation) {
  Circuit c(1);
  c.x(0).measure(0, 0).x(0);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 3u);
}

TEST(CancelInverses, DifferentOperandOrderDoesNotCancel) {
  Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  const Circuit r = cancel_adjacent_inverses(c);
  EXPECT_EQ(r.size(), 2u);
}

TEST(CancelInverses, PreservesSemanticsOnRandomCircuits) {
  for (std::uint64_t seed : {1ull, 7ull, 13ull}) {
    const Circuit c = random_clifford_t(4, 60, seed);
    const Circuit r = cancel_adjacent_inverses(c);
    EXPECT_LE(r.size(), c.size());
    EXPECT_LT(unitary_error(c, r), 1e-9) << "seed " << seed;
  }
}


// ---- commutation-aware cancellation -----------------------------------------

TEST(CommuteCancel, RzThroughCxControl) {
  // RZ on a CX control commutes with the CX: the pair cancels.
  Circuit c(2);
  c.rz(0, 0.7).cx(0, 1).rz(0, -0.7);
  const Circuit r = commute_cancel(c);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.gate(0).kind, GateKind::CX);
  EXPECT_LT(unitary_error(c, r), 1e-9);
}

TEST(CommuteCancel, XThroughCxTarget) {
  Circuit c(2);
  c.x(1).cx(0, 1).x(1);
  const Circuit r = commute_cancel(c);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_LT(unitary_error(c, r), 1e-9);
}

TEST(CommuteCancel, HOnControlBlocks) {
  // H on the control does NOT commute with CX: nothing cancels.
  Circuit c(2);
  c.h(0).cx(0, 1).h(0);
  EXPECT_EQ(commute_cancel(c).size(), 3u);
}

TEST(CommuteCancel, CancelsThroughDisjointGates) {
  Circuit c(4);
  c.t(0).x(1).cz(2, 3).h(2).tdg(0);
  const Circuit r = commute_cancel(c);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_LT(unitary_error(c, r), 1e-9);
}

TEST(CommuteCancel, CzCommutesWithZRotations) {
  // CZ is diagonal: any diagonal gate on its qubits commutes through it.
  Circuit c(2);
  c.s(0).cz(0, 1).t(1).cz(0, 1).sdg(0);
  const Circuit r = commute_cancel(c);
  // The two CZ cancel through the T (diagonal), then S/Sdg cancel through
  // nothing-left-in-between.
  EXPECT_LT(r.size(), c.size());
  EXPECT_LT(unitary_error(c, r), 1e-9);
}

TEST(CommuteCancel, MeasureBlocksAcross) {
  Circuit c(1);
  c.x(0).measure(0, 0).x(0);
  EXPECT_EQ(commute_cancel(c).size(), 3u);
}

TEST(CommuteCancel, PreservesSemanticsOnRandomCircuits) {
  for (std::uint64_t seed : {4ull, 21ull, 42ull}) {
    const Circuit c = random_clifford_t(4, 80, seed);
    const Circuit r = commute_cancel(c);
    EXPECT_LE(r.size(), c.size());
    EXPECT_LT(unitary_error(c, r), 1e-9) << "seed " << seed;
  }
}

TEST(CommuteCancel, StrictlyStrongerThanAdjacentOnQaoaLayers) {
  // Adjacent RZZ layers with an interleaved diagonal layer: the plain pass
  // cannot cancel through it, the commuting pass can.
  Circuit c(3);
  c.rzz(0, 1, 0.4).rzz(1, 2, 0.9).rzz(0, 1, -0.4);
  const Circuit plain = cancel_adjacent_inverses(c);
  const Circuit strong = commute_cancel(c);
  EXPECT_EQ(plain.size(), 3u);
  EXPECT_EQ(strong.size(), 1u);
  EXPECT_LT(unitary_error(c, strong), 1e-9);
}

// ---- rotation merging --------------------------------------------------------

TEST(MergeRotations, FoldsSameAxisRuns) {
  Circuit c(1);
  c.rz(0, 0.3).rz(0, 0.4).rz(0, 0.5);
  const Circuit r = merge_rotations(c);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r.gate(0).params[0], 1.2, 1e-12);
}

TEST(MergeRotations, DropsZeroSums) {
  Circuit c(1);
  c.rx(0, 0.9).rx(0, -0.9);
  EXPECT_EQ(merge_rotations(c).size(), 0u);
}

TEST(MergeRotations, DoesNotMixAxes) {
  Circuit c(1);
  c.rz(0, 0.3).rx(0, 0.3);
  EXPECT_EQ(merge_rotations(c).size(), 2u);
}

TEST(MergeRotations, MergesTwoQubitRotations) {
  Circuit c(2);
  c.rzz(0, 1, 0.2).rzz(0, 1, 0.3).cp(0, 1, 0.1).cp(0, 1, 0.2);
  const Circuit r = merge_rotations(c);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r.gate(0).params[0], 0.5, 1e-12);
  EXPECT_NEAR(r.gate(1).params[0], 0.3, 1e-12);
}

TEST(MergeRotations, InterveningGateBlocks) {
  Circuit c(2);
  c.rz(0, 0.3).cx(0, 1).rz(0, 0.4);
  EXPECT_EQ(merge_rotations(c).size(), 3u);
}

TEST(MergeRotations, PreservesSemantics) {
  Circuit c(3);
  c.rz(0, 0.1).rz(0, 0.2).rx(1, 0.5).rx(1, -0.2).rzz(1, 2, 0.7)
      .rzz(1, 2, 0.1).h(0).rz(0, 0.4);
  const Circuit r = merge_rotations(c);
  EXPECT_LT(unitary_error(c, r), 1e-10);
}

// ---- 1-qubit run merging -------------------------------------------------------

TEST(MergeRuns, CollapsesRunsIntoU) {
  Circuit c(2);
  c.h(0).t(0).s(0).sx(0).cx(0, 1).h(1).tdg(1);
  const Circuit r = merge_single_qubit_runs(c);
  // q0 run of 4 -> one U; CX; q1 run of 2 -> one U.
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.gate(0).kind, GateKind::U);
  EXPECT_EQ(r.gate(1).kind, GateKind::CX);
  EXPECT_EQ(r.gate(2).kind, GateKind::U);
  EXPECT_LT(unitary_error_up_to_phase(c, r), 1e-9);
}

TEST(MergeRuns, SingleGateRunsPassThroughUnchanged) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const Circuit r = merge_single_qubit_runs(c);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.gate(0).kind, GateKind::H);
}

TEST(MergeRuns, PreservesSemanticsOnRandomCircuits) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    const Circuit c = random_clifford_t(4, 50, seed);
    const Circuit r = merge_single_qubit_runs(c);
    EXPECT_LT(unitary_error_up_to_phase(c, r), 1e-9) << "seed " << seed;
  }
}

// ---- optimize pipeline --------------------------------------------------------

TEST(Optimize, FixpointCancelsChains) {
  // h t t† h  needs two cancel iterations (inner pair first).
  Circuit c(1);
  c.h(0).t(0).tdg(0).h(0);
  EXPECT_EQ(optimize(c).size(), 0u);
}

TEST(Optimize, CircuitComposedWithInverseVanishes) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(1).rzz(1, 2, 0.4).swap(0, 2);
  Circuit round = c;
  round.compose(c.inverse());
  const Circuit r = optimize(round);
  EXPECT_EQ(r.size(), 0u);
}

TEST(Optimize, ReducesRedundantLibraryCompositions) {
  Circuit c = qft(5);
  c.compose(inverse_qft(5));
  const Circuit r = optimize(c);
  EXPECT_LT(r.size(), c.size() / 4);
  EXPECT_LT(unitary_error(c, r), 1e-9);
}

// ---- basis decomposition --------------------------------------------------------

class DecomposeGateTest : public ::testing::TestWithParam<Gate> {};

TEST_P(DecomposeGateTest, EquivalentOverCxBasis) {
  const Gate g = GetParam();
  unsigned n = 0;
  for (unsigned q : g.qubits) n = std::max(n, q + 1);
  Circuit c(n);
  c.append(g);
  const Circuit d = decompose_to_cx_basis(c);
  for (const auto& dg : d.gates()) {
    EXPECT_TRUE(dg.kind == GateKind::CX || dg.num_qubits() == 1)
        << dg.to_string();
  }
  EXPECT_LT(unitary_error(c, d), 1e-9) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DecomposeGateTest,
    ::testing::Values(
        Gate::swap(0, 1), Gate::swap(1, 0), Gate::iswap(0, 1),
        Gate::cz(0, 1), Gate::cy(0, 1), Gate::ch(0, 1), Gate::cp(0, 1, 0.7),
        Gate::crx(0, 1, 0.5), Gate::cry(1, 0, 0.6), Gate::crz(0, 1, 0.8),
        Gate::rxx(0, 1, 0.4), Gate::ryy(0, 1, 0.5), Gate::rzz(0, 1, 0.6),
        Gate::ccx(0, 1, 2), Gate::ccx(2, 0, 1), Gate::ccz(0, 1, 2),
        Gate::cswap(0, 1, 2), Gate::cswap(2, 1, 0),
        Gate::mcx({0, 1, 2}, 3), Gate::mcx({0, 1, 2, 3}, 4),
        Gate::mcp({0, 1}, 2, 0.9), Gate::mcp({0, 1, 2}, 3, 1.3)));

TEST(Decompose, WholeCircuitEquivalence) {
  Circuit c(4);
  c.h(0).cz(0, 1).ccx(0, 1, 2).swap(2, 3).cp(1, 3, 0.5).rzz(0, 2, 0.3)
      .iswap(1, 2).cswap(0, 1, 3);
  const Circuit d = decompose_to_cx_basis(c);
  EXPECT_LT(unitary_error(c, d), 1e-9);
  EXPECT_GT(d.size(), c.size());
}

TEST(Decompose, GroverSurvivesDecomposition) {
  const Circuit g = grover(4, 9);
  const Circuit d = decompose_to_cx_basis(g);
  const auto state = dense::run(d);
  EXPECT_GT(std::norm(state[9]), 0.9);
}

TEST(Decompose, RejectsDensePayloads) {
  Xoshiro256 rng(1);
  Circuit c(2);
  c.append(Gate::u2q(0, 1, Matrix::random_unitary(4, rng)));
  EXPECT_THROW(decompose_to_cx_basis(c), Error);
}

TEST(Decompose, MeasurePassesThrough) {
  Circuit c(3);
  c.h(0).measure(0, 0).barrier().reset(1);
  const Circuit d = decompose_to_cx_basis(c);
  EXPECT_EQ(d.size(), 4u);
}

TEST(Decompose, ThenOptimizeShrinks) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  c.ccx(0, 1, 2);  // CCX twice = identity: decompose then optimize shrinks
  const Circuit d = decompose_to_cx_basis(c);
  const Circuit o = optimize(d);
  EXPECT_LT(o.size(), d.size());
  EXPECT_LT(dense::circuit_unitary(o).distance(Matrix::identity(8)), 1e-9);
}

}  // namespace
}  // namespace svsim::qc
