#include "sv/state_vector.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/dense.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {
namespace {

/// Brace-friendly shim: std::span cannot bind an initializer list directly.
void set_state_of(StateVector<double>& sv,
                  std::vector<std::complex<double>> v) {
  sv.set_state(v);
}

TEST(StateVector, InitializesToZeroState) {
  StateVector<double> sv(4);
  EXPECT_EQ(sv.size(), 16u);
  EXPECT_EQ(sv.num_qubits(), 4u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - std::complex<double>{1, 0}), 0.0,
              1e-15);
  for (std::uint64_t i = 1; i < sv.size(); ++i)
    EXPECT_EQ(sv.amplitude(i), (std::complex<double>{0, 0}));
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-15);
}

TEST(StateVector, RejectsBadSizes) {
  EXPECT_THROW(StateVector<double>(0), Error);
  EXPECT_THROW(StateVector<double>(60), Error);
}

TEST(StateVector, SetBasisState) {
  StateVector<double> sv(3);
  sv.set_basis_state(5);
  EXPECT_NEAR(sv.probability(5), 1.0, 1e-15);
  EXPECT_NEAR(sv.probability(0), 0.0, 1e-15);
  EXPECT_THROW(sv.set_basis_state(8), Error);
}

TEST(StateVector, SetStateAndToVectorRoundTrip) {
  StateVector<double> sv(2);
  const std::vector<std::complex<double>> state = {0.5, 0.5, 0.5, 0.5};
  set_state_of(sv, state);
  EXPECT_EQ(sv.to_vector(), state);
}

TEST(StateVector, NormalizeScalesToUnit) {
  StateVector<double> sv(2);
  set_state_of(sv, {{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}});
  sv.normalize();
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(StateVector, InnerProductOrthonormalBasis) {
  StateVector<double> a(3), b(3);
  a.set_basis_state(2);
  b.set_basis_state(2);
  EXPECT_NEAR(std::abs(a.inner_product(b) - std::complex<double>{1, 0}), 0.0,
              1e-14);
  b.set_basis_state(3);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, 1e-14);
}

TEST(StateVector, InnerProductPhase) {
  StateVector<double> a(1), b(1);
  // a = |0>, b = i|0>  ->  <a|b> = i
  set_state_of(b, {{0.0, 1.0}, {0.0, 0.0}});
  const auto ip = a.inner_product(b);
  EXPECT_NEAR(ip.real(), 0.0, 1e-14);
  EXPECT_NEAR(ip.imag(), 1.0, 1e-14);
}

TEST(StateVector, ProbabilityOfOne) {
  StateVector<double> sv(2);
  // (|00> + |01>)/√2 : qubit 0 has P(1) = 1/2, qubit 1 has P(1) = 0.
  const double r = 1 / std::numbers::sqrt2;
  set_state_of(sv, {r, r, 0.0, 0.0});
  EXPECT_NEAR(sv.probability_of_one(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability_of_one(1), 0.0, 1e-12);
  EXPECT_THROW(sv.probability_of_one(2), Error);
}

TEST(StateVector, CollapseProjectsAndRenormalizes) {
  StateVector<double> sv(2);
  const double r = 0.5;
  set_state_of(sv, {r, r, r, r});
  sv.collapse(0, true, 0.5);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
  EXPECT_NEAR(sv.probability_of_one(0), 1.0, 1e-12);
  EXPECT_NEAR(sv.probability(0), 0.0, 1e-15);
  EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(StateVector, MeasureDeterministicStates) {
  Xoshiro256 rng(1);
  StateVector<double> sv(2);
  sv.set_basis_state(3);
  EXPECT_TRUE(sv.measure(0, rng));
  EXPECT_TRUE(sv.measure(1, rng));
  sv.set_basis_state(0);
  EXPECT_FALSE(sv.measure(0, rng));
}

TEST(StateVector, MeasureStatisticsOnPlusState) {
  Xoshiro256 rng(7);
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    StateVector<double> sv(1);
    apply_h(sv.data(), 1, 0, sv.pool());
    ones += sv.measure(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

TEST(StateVector, ResetForcesZero) {
  Xoshiro256 rng(3);
  StateVector<double> sv(2);
  sv.set_basis_state(3);
  sv.reset_qubit(0, rng);
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-12);
  EXPECT_NEAR(sv.probability_of_one(1), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(StateVector, SampleRespectsDistribution) {
  StateVector<double> sv(2);
  // P = {0.25, 0.25, 0.5, 0}
  set_state_of(sv, {0.5, 0.5, 1 / std::numbers::sqrt2, 0.0});
  Xoshiro256 rng(11);
  const auto samples = sv.sample(20000, rng);
  std::array<int, 4> counts{};
  for (auto s : samples) ++counts[s];
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.5, 0.02);
  EXPECT_EQ(counts[3], 0);
}

TEST(StateVector, SampleDeterministicInSeed) {
  StateVector<double> sv(3);
  apply_h(sv.data(), 3, 0, sv.pool());
  apply_h(sv.data(), 3, 1, sv.pool());
  Xoshiro256 r1(5), r2(5);
  EXPECT_EQ(sv.sample(100, r1), sv.sample(100, r2));
}

TEST(StateVector, ExpectationSingleQubitPaulis) {
  StateVector<double> sv(1);
  // |0>: <Z> = 1, <X> = 0.
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("Z")), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("X")), 0.0, 1e-12);
  // |+>: <X> = 1, <Z> = 0.
  apply_h(sv.data(), 1, 0, sv.pool());
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("X")), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("Z")), 0.0, 1e-12);
}

TEST(StateVector, ExpectationWithYFactor) {
  // |y+> = (|0> + i|1>)/√2 has <Y> = +1.
  StateVector<double> sv(1);
  const double r = 1 / std::numbers::sqrt2;
  set_state_of(sv, {{r, 0.0}, {0.0, r}});
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("Y")), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation(qc::PauliString::from_label("Z")), 0.0, 1e-12);
}

TEST(StateVector, ExpectationMatchesDenseMatrixQuadratureRandomStates) {
  Xoshiro256 rng(13);
  const unsigned n = 4;
  for (const std::string label : {"ZZII", "XXYY", "IXZY", "YIIX"}) {
    // Random normalized state.
    std::vector<std::complex<double>> state(pow2(n));
    double norm = 0.0;
    for (auto& a : state) {
      a = {rng.normal(), rng.normal()};
      norm += std::norm(a);
    }
    for (auto& a : state) a /= std::sqrt(norm);

    StateVector<double> sv(n);
    set_state_of(sv, state);
    const auto p = qc::PauliString::from_label(label);
    const qc::Matrix pm = p.to_matrix();
    std::complex<double> expect{0, 0};
    for (std::uint64_t i = 0; i < state.size(); ++i)
      for (std::uint64_t j = 0; j < state.size(); ++j)
        expect += std::conj(state[i]) * pm(i, j) * state[j];
    EXPECT_NEAR(sv.expectation(p), expect.real(), 1e-10) << label;
  }
}

TEST(StateVector, ExpectationOfOperatorSumsTerms) {
  StateVector<double> sv(2);
  qc::PauliOperator op(2);
  op.add(2.0, "IZ").add(3.0, "ZI").add(0.5, "XX");
  // |00>: <IZ> = <ZI> = 1, <XX> = 0.
  EXPECT_NEAR(sv.expectation(op), 5.0, 1e-12);
}


TEST(StateVector, MarginalProbabilities) {
  // (|00> + |11>)/√2 on qubits {0,1} of a 3-qubit register.
  StateVector<double> sv(3);
  apply_h(sv.data(), 3, 0, sv.pool());
  sv::apply_gate(sv, qc::Gate::cx(0, 1));
  const auto m01 = sv.marginal_probabilities({0, 1});
  ASSERT_EQ(m01.size(), 4u);
  EXPECT_NEAR(m01[0], 0.5, 1e-12);
  EXPECT_NEAR(m01[3], 0.5, 1e-12);
  EXPECT_NEAR(m01[1], 0.0, 1e-12);
  // Marginal of one qubit matches probability_of_one.
  const auto m0 = sv.marginal_probabilities({0});
  EXPECT_NEAR(m0[1], sv.probability_of_one(0), 1e-12);
  // Order of the qubit list sets the bit order of the bin index.
  const auto m10 = sv.marginal_probabilities({1, 0});
  EXPECT_NEAR(m10[0], m01[0], 1e-12);
  EXPECT_NEAR(m10[3], m01[3], 1e-12);
}

TEST(StateVector, MarginalSumsToOneAndValidates) {
  StateVector<double> sv(4);
  apply_h(sv.data(), 4, 2, sv.pool());
  apply_h(sv.data(), 4, 3, sv.pool());
  const auto m = sv.marginal_probabilities({3, 1});
  double total = 0.0;
  for (double p : m) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_THROW(sv.marginal_probabilities({}), Error);
  EXPECT_THROW(sv.marginal_probabilities({9}), Error);
}

TEST(StateVectorFloat, SinglePrecisionBasics) {
  StateVector<float> sv(3);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-6);
  apply_h(sv.data(), 3, 1, sv.pool());
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-6);
  EXPECT_NEAR(sv.probability_of_one(1), 0.5, 1e-6);
}

TEST(StateVectorFloat, PrecisionLowerThanDouble) {
  // Apply many gates; float error grows but stays bounded for this size.
  StateVector<float> svf(4);
  StateVector<double> svd(4);
  for (int rep = 0; rep < 50; ++rep) {
    for (unsigned q = 0; q < 4; ++q) {
      apply_h(svf.data(), 4, q, svf.pool());
      apply_h(svd.data(), 4, q, svd.pool());
    }
  }
  EXPECT_NEAR(svf.norm_squared(), 1.0, 1e-4);
  EXPECT_NEAR(svd.norm_squared(), 1.0, 1e-12);
}

}  // namespace
}  // namespace svsim::sv
