// End-to-end integration: functional simulation, the performance pipeline,
// and the calibration anchors from the authors' published A64FX numbers,
// exercised together the way the bench harness uses them.
#include <gtest/gtest.h>

#include <numbers>

#include "common/bits.hpp"
#include "common/timer.hpp"
#include "dist/dist_sim.hpp"
#include "machine/roofline.hpp"
#include "perf/perf_simulator.hpp"
#include "perf/power_model.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace svsim {
namespace {

TEST(Integration, QasmToSimulationToExpectation) {
  // Parse a VQE-style circuit from QASM, simulate, take an observable.
  const qc::Circuit c = qc::parse_qasm(R"(
    OPENQASM 2.0;
    qreg q[4];
    h q[0]; cx q[0],q[1]; cx q[1],q[2]; cx q[2],q[3];
    rz(pi/3) q[3];
    cx q[2],q[3]; cx q[1],q[2]; cx q[0],q[1]; h q[0];
  )");
  sv::Simulator<double> sim;
  qc::PauliOperator z0(4);
  z0.add(1.0, "IIIZ");
  const double expect = sim.expectation(c, z0);
  // The sandwich implements exp(-i π/6 X Z Z Z)-ish evolution on |0000>:
  // <Z_0> = cos(π/3) = 0.5.
  EXPECT_NEAR(expect, 0.5, 1e-10);
}

TEST(Integration, QftRoundTripOnSixteenQubits) {
  const unsigned n = 16;
  qc::Circuit c(n);
  // Prepare a nontrivial basis state, QFT, inverse QFT, verify.
  c.x(3).x(7).x(12);
  c.compose(qc::qft(n));
  c.compose(qc::inverse_qft(n));
  sv::Simulator<double> sim;
  const auto svec = sim.run(c);
  const std::uint64_t want = pow2(3) | pow2(7) | pow2(12);
  EXPECT_NEAR(svec.probability(want), 1.0, 1e-8);
}

TEST(Integration, FusedSimulationOfQv18MatchesUnfused) {
  const qc::Circuit c = qc::random_quantum_volume(18, 6, 123);
  sv::Simulator<double> plain;
  sv::SimulatorOptions fo;
  fo.fusion = true;
  fo.fusion_width = 5;
  sv::Simulator<double> fused(fo);
  const auto a = plain.run(c);
  const auto b = fused.run(c);
  // Compare fidelity |<a|b>| = 1.
  const auto ip = a.inner_product(b);
  EXPECT_NEAR(std::abs(ip), 1.0, 1e-9);
}

TEST(Integration, CalibrationAnchorStreamBandwidth) {
  // Anchor 1: the model's achieved bandwidth for a big memory-bound gate
  // equals the published A64FX STREAM number (~830 GB/s).
  const auto m = machine::MachineSpec::a64fx();
  const perf::GateTiming t = perf::time_gate(qc::Gate::h(20), 30, m, {});
  const double gbps = t.cost.bytes / t.memory_seconds * 1e-9;
  EXPECT_NEAR(gbps, 830.0, 15.0);
}

TEST(Integration, CalibrationAnchorCmgSaturation) {
  // Anchor 2: one CMG saturates around ~207 GB/s (256 GB/s HBM x 0.81).
  const auto m = machine::MachineSpec::a64fx();
  machine::ExecConfig cfg;
  cfg.threads = 12;
  EXPECT_NEAR(machine::memory_bandwidth_gbps(m, place_threads(m, cfg)),
              207.4, 1.0);
}

TEST(Integration, CalibrationAnchorBoostMode) {
  // Anchor 3: boost gives exactly +10% compute throughput.
  const auto normal = machine::MachineSpec::a64fx();
  const auto boost = machine::MachineSpec::a64fx_boost();
  EXPECT_NEAR(boost.peak_gflops() / normal.peak_gflops(), 1.10, 1e-9);
}

TEST(Integration, PerfPipelineRanksMachinesLikeStream) {
  // For a memory-bound circuit the machine ranking must follow STREAM:
  // A64FX > ThunderX2 > Xeon.
  const qc::Circuit c = qc::qft(26);
  const double t_a64 =
      perf::simulate_circuit(c, machine::MachineSpec::a64fx(), {})
          .total_seconds;
  const double t_tx2 =
      perf::simulate_circuit(c, machine::MachineSpec::thunderx2_dual(), {})
          .total_seconds;
  const double t_xeon =
      perf::simulate_circuit(c, machine::MachineSpec::xeon_6148_dual(), {})
          .total_seconds;
  EXPECT_LT(t_a64, t_tx2);
  EXPECT_LT(t_tx2, t_xeon);
}

TEST(Integration, MeasuredHostKernelAgreesWithHostModelShape) {
  // Run a real H-gate sweep on the host at n=18 and check the *shape*
  // against the generic-host model: high-target time within 3x of
  // low-target time (both stream the same bytes), and the model agrees
  // that traffic is identical.
  const unsigned n = 18;
  sv::StateVector<double> svec(n);
  auto time_target = [&](unsigned t) {
    Timer timer;
    for (int rep = 0; rep < 4; ++rep)
      sv::apply_h(svec.data(), n, t, svec.pool());
    return timer.seconds();
  };
  const double t_low = time_target(0);
  const double t_high = time_target(n - 1);
  EXPECT_GT(t_low, 0.0);
  EXPECT_GT(t_high, 0.0);
  EXPECT_LT(t_low / t_high, 8.0);
  EXPECT_LT(t_high / t_low, 8.0);

  const auto host = machine::MachineSpec::generic_host(1, 2.1, 10.0);
  machine::ExecConfig cfg;
  cfg.threads = 1;
  const auto c_low = perf::gate_cost(qc::Gate::h(0), n, host, cfg);
  const auto c_high = perf::gate_cost(qc::Gate::h(n - 1), n, host, cfg);
  EXPECT_DOUBLE_EQ(c_low.bytes, c_high.bytes);
}

TEST(Integration, DistributedQftProjectionEndToEnd) {
  // Full pipeline: plan -> time -> event-driven check, both schedulers.
  const qc::Circuit c = qc::qft(24);
  for (auto sched : {dist::CommScheduler::Naive, dist::CommScheduler::Remap}) {
    const auto plan = dist::plan_distribution(c, 4, sched);
    const auto t = dist::time_plan(plan, machine::MachineSpec::a64fx(), {},
                                   dist::InterconnectSpec::tofu_d());
    EXPECT_GT(t.total_seconds, 0.0) << dist::scheduler_name(sched);
    const double makespan = dist::event_driven_makespan(
        plan, machine::MachineSpec::a64fx(), {},
        dist::InterconnectSpec::tofu_d());
    EXPECT_NEAR(makespan, t.total_seconds, t.total_seconds * 1e-6);
  }
}

TEST(Integration, PowerPerfEnergySweepIsConsistent) {
  const qc::Circuit c = qc::qft(24);
  const auto normal = perf::estimate_power(
      c, machine::MachineSpec::a64fx(), {});
  const auto report = perf::simulate_circuit(
      c, machine::MachineSpec::a64fx(), {});
  EXPECT_NEAR(normal.seconds, report.total_seconds,
              report.total_seconds * 1e-9);
}

TEST(Integration, GroverWithNoiseDegradesSuccess) {
  const unsigned n = 6;
  const std::uint64_t marked = 21;
  sv::Simulator<double> ideal;
  const double p_ideal = ideal.run(qc::grover(n, marked)).probability(marked);

  sv::SimulatorOptions noisy;
  noisy.noise.add_depolarizing(0.02);
  noisy.seed = 31;
  sv::Simulator<double> sim(noisy);
  double p_noisy = 0.0;
  const int traj = 40;
  for (int i = 0; i < traj; ++i)
    p_noisy += sim.run(qc::grover(n, marked)).probability(marked);
  p_noisy /= traj;
  EXPECT_GT(p_ideal, 0.95);
  EXPECT_LT(p_noisy, p_ideal - 0.1);
}

}  // namespace
}  // namespace svsim
