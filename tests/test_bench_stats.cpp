#include "obs/bench/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/bench/env.hpp"
#include "obs/bench/record.hpp"
#include "obs/bench/registry.hpp"

namespace svsim::obs::bench {
namespace {

TEST(MedianOf, HandlesEmptyOddEven) {
  EXPECT_EQ(median_of({}), 0.0);
  EXPECT_EQ(median_of({3.0}), 3.0);
  EXPECT_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Summarize, BasicStatisticsOnCleanSeries) {
  const SampleStats st = summarize({1.0, 1.0, 1.0, 1.0, 1.0}, {});
  EXPECT_EQ(st.reps(), 5);
  EXPECT_EQ(st.warmup_reps, 0);
  EXPECT_EQ(st.outliers_rejected, 0);
  EXPECT_DOUBLE_EQ(st.mean, 1.0);
  EXPECT_DOUBLE_EQ(st.median, 1.0);
  EXPECT_DOUBLE_EQ(st.stddev, 0.0);
  EXPECT_DOUBLE_EQ(st.mad, 0.0);
  EXPECT_TRUE(st.converged);
}

TEST(Summarize, DetectsLeadingWarmup) {
  // First two reps are 2x slower than the steady state: classic cold-cache
  // warmup that a plain mean would smear into the result.
  const std::vector<double> raw = {2.0, 2.0, 1.0, 1.0, 1.0, 1.0,
                                   1.0, 1.0, 1.0, 1.0};
  const SampleStats st = summarize(raw, {});
  EXPECT_EQ(st.warmup_reps, 2);
  EXPECT_EQ(st.reps(), 8);
  EXPECT_DOUBLE_EQ(st.median, 1.0);
  EXPECT_DOUBLE_EQ(st.mean, 1.0);
}

TEST(Summarize, WarmupCappedAtQuarterOfSeries) {
  // A monotonically decreasing (pathological) series must not be eaten from
  // the front: at most size/4 reps may be classified as warmup.
  const std::vector<double> raw = {8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0};
  const SampleStats st = summarize(raw, {});
  EXPECT_LE(st.warmup_reps, 2);
  EXPECT_GE(st.reps(), 6);
}

TEST(Summarize, RejectsOutlierBeyondMadFence) {
  // One rep hit a scheduler hiccup: 100x the others. The MAD fence drops it
  // and the median/mean stay at the steady state.
  const std::vector<double> raw = {1.00, 0.99, 1.01, 0.98, 1.02, 1.00,
                                   0.99, 100.0, 1.01, 0.98, 1.02, 1.00};
  const SampleStats st = summarize(raw, {});
  EXPECT_EQ(st.outliers_rejected, 1);
  EXPECT_NEAR(st.median, 1.0, 1e-9);
  EXPECT_LT(st.max, 2.0);
}

TEST(Summarize, ZeroMadSkipsOutlierPass) {
  // All-equal samples: MAD is 0, the fence would reject everything; the
  // engine must keep the series intact instead.
  const SampleStats st = summarize({1.0, 1.0, 1.0, 1.0, 1.0, 5.0}, {});
  EXPECT_EQ(st.reps(), 6);
  EXPECT_EQ(st.outliers_rejected, 0);
}

TEST(Summarize, NoisySeriesDoesNotConverge) {
  StatConfig cfg;
  cfg.target_rel_ci = 0.01;
  const SampleStats st = summarize({1.0, 2.0, 1.0, 2.0, 1.0, 2.0}, cfg);
  EXPECT_FALSE(st.converged);
  EXPECT_GT(st.rel_ci95, cfg.target_rel_ci);
}

TEST(Measure, RespectsMinAndMaxReps) {
  StatConfig cfg;
  cfg.min_reps = 4;
  cfg.max_reps = 6;
  cfg.target_rel_ci = 1e-12;  // unreachable: forces the rep cap
  cfg.max_seconds = 60.0;
  int calls = 0;
  const SampleStats st = measure([&] { ++calls; }, cfg);
  // priming rep + max_reps samples.
  EXPECT_EQ(calls, 7);
  EXPECT_GE(st.reps() + st.warmup_reps + st.outliers_rejected, cfg.min_reps);
}

TEST(Measure, StopsOnTimeBudget) {
  StatConfig cfg;
  cfg.min_reps = 2;
  cfg.max_reps = 1000000;
  cfg.target_rel_ci = 0.0;  // never converges
  cfg.max_seconds = 0.02;
  const SampleStats st = measure([] {
    volatile double x = 0;
    for (int i = 0; i < 20000; ++i) x = x + 1.0;
  }, cfg);
  // The budget, not the (absurd) rep cap, must have ended the loop, and
  // the engine must not blow far past it.
  EXPECT_LT(st.reps(), 1000000);
  EXPECT_LT(st.total_seconds, 1.0);
}

TEST(Measure, FastDeterministicFnConverges) {
  StatConfig cfg = StatConfig::smoke();
  const SampleStats st = measure([] {
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }, cfg);
  EXPECT_GE(st.reps(), 1);
  EXPECT_GT(st.median, 0.0);
}

TEST(HostSpecOverride, ParsesKeyValueList) {
  unsigned cores = 0;
  double ghz = 0, gbps = 0;
  EXPECT_TRUE(
      parse_host_spec_override("cores=16,ghz=2.5,gbps=64", cores, ghz, gbps));
  EXPECT_EQ(cores, 16u);
  EXPECT_DOUBLE_EQ(ghz, 2.5);
  EXPECT_DOUBLE_EQ(gbps, 64.0);
}

TEST(HostSpecOverride, PartialAndInvalidInputs) {
  unsigned cores = 0;
  double ghz = 0, gbps = 0;
  EXPECT_TRUE(parse_host_spec_override("ghz=3.0", cores, ghz, gbps));
  EXPECT_DOUBLE_EQ(ghz, 3.0);
  EXPECT_EQ(cores, 0u);
  EXPECT_FALSE(parse_host_spec_override("bogus", cores, ghz, gbps));
  EXPECT_FALSE(parse_host_spec_override("", cores, ghz, gbps));
}

TEST(RecordJson, EscapesAndSerializes) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");

  BenchRecord r;
  r.id = "case.sub";
  r.case_id = "case";
  r.kind = "measured";
  r.unit = "s";
  r.value = 0.5;
  r.has_stats = true;
  r.stats = summarize({0.5, 0.5, 0.5, 0.5, 0.5}, {});
  std::ostringstream os;
  write_record_json(os, r);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"id\":\"case.sub\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"measured\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\":[0.5,0.5,0.5,0.5,0.5]"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Registry, CasesAreRegisteredAndSorted) {
  // The test binary does not link the bench cases; the registry is empty
  // here, but the API contract (sorted, copy-out) must still hold.
  const auto cases = all_cases();
  for (std::size_t i = 1; i < cases.size(); ++i)
    EXPECT_LT(cases[i - 1].id, cases[i].id);
}

TEST(RunCase, CapturesExceptionInsteadOfPropagating) {
  BenchCase c;
  c.id = "throwing_case";
  c.title = "T";
  c.description = "throws";
  c.fn = [](BenchContext&) { throw std::runtime_error("boom"); };
  const CaseResult r =
      run_case(c, StatConfig::smoke(), true, false, nullptr);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.error, "boom");
}

}  // namespace
}  // namespace svsim::obs::bench
