#include "sv/simulator.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;
using qc::Gate;

TEST(Simulator, BellState) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  Simulator<double> sim;
  const auto sv = sim.run(c);
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(3), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(1), 0.0, 1e-15);
}

TEST(Simulator, MatchesDenseOnRandomCircuits) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Circuit c = qc::random_clifford_t(6, 80, seed);
    Simulator<double> sim;
    const auto got = sim.run(c).to_vector();
    const auto want = qc::dense::run(c);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-10);
  }
}

TEST(Simulator, QftStateMatchesDense) {
  Circuit c = qc::qft(7);
  Simulator<double> sim;
  const auto got = sim.run(c).to_vector();
  const auto want = qc::dense::run(c);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9);
}

TEST(Simulator, BlockingDoesNotChangeResults) {
  // Random circuits with targets on both sides of the block boundary; the
  // blocked path runs the same kernel math (identical up to FP instruction
  // selection between the block and whole-state loops).
  for (std::uint64_t seed : {5ull, 6ull}) {
    const Circuit c = qc::random_clifford_t(8, 80, seed);
    Simulator<double> plain;
    SimulatorOptions bopts;
    bopts.blocking = true;
    bopts.block_qubits = 4;
    Simulator<double> blocked(bopts);
    const auto a = plain.run(c).to_vector();
    const auto b = blocked.run(c).to_vector();
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Simulator, BlockingComposesWithFusionAndMeasurement) {
  Circuit c = qc::random_quantum_volume(6, 4, 17);
  c.measure_all();
  SimulatorOptions opts;
  opts.fusion = true;
  opts.fusion_width = 3;
  opts.blocking = true;
  opts.seed = 11;
  Simulator<double> blocked(opts);
  SimulatorOptions plain_opts;
  plain_opts.seed = 11;
  Simulator<double> plain(plain_opts);
  const auto got = blocked.sample_counts(c, 512);
  const auto want = plain.sample_counts(c, 512);
  EXPECT_EQ(got, want);  // same seed, amplitude-exact path: same samples
}

TEST(Simulator, FusionDoesNotChangeResults) {
  const Circuit c = qc::random_quantum_volume(7, 5, 42);
  Simulator<double> plain;
  SimulatorOptions fused_opts;
  fused_opts.fusion = true;
  fused_opts.fusion_width = 4;
  Simulator<double> fused(fused_opts);
  const auto a = plain.run(c).to_vector();
  const auto b = fused.run(c).to_vector();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-9);
}

TEST(Simulator, RunInPlaceValidatesWidth) {
  Circuit c(3);
  c.h(0);
  Simulator<double> sim;
  StateVector<double> wrong(2);
  EXPECT_THROW(sim.run_in_place(wrong, c), Error);
}

TEST(Simulator, MeasurementCollapsesAndRecords) {
  Circuit c(2);
  c.x(0).measure(0, 0).measure(1, 1);
  Simulator<double> sim;
  const auto sv = sim.run(c);
  EXPECT_TRUE(sim.classical_bits()[0]);
  EXPECT_FALSE(sim.classical_bits()[1]);
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
}

TEST(Simulator, ResetMidCircuit) {
  Circuit c(1);
  c.x(0).reset(0).h(0);
  Simulator<double> sim;
  const auto sv = sim.run(c);
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(Simulator, SampleCountsGhzFastPath) {
  Circuit c = qc::ghz(4);
  Simulator<double> sim;
  const auto counts = sim.sample_counts(c, 4000);
  // Only |0000> and |1111>.
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_NEAR(static_cast<double>(counts.at(0)) / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(counts.at(15)) / 4000.0, 0.5, 0.05);
}

TEST(Simulator, SampleCountsWithTrailingMeasuresMapsClbits) {
  Circuit c(3, 2);
  c.x(2).measure(2, 0).measure(0, 1);
  Simulator<double> sim;
  const auto counts = sim.sample_counts(c, 100);
  // q2=1 -> c0=1; q0=0 -> c1=0: key 0b01 = 1 always.
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, 1u);
  EXPECT_EQ(counts.begin()->second, 100u);
}

TEST(Simulator, SampleCountsTrajectoryPathForMidCircuitMeasure) {
  // Measure then act on the outcome qubit again: forces trajectories.
  Circuit c(1);
  c.h(0).measure(0, 0).h(0).measure(0, 0);
  Simulator<double> sim;
  const auto counts = sim.sample_counts(c, 400);
  std::size_t total = 0;
  for (const auto& [k, v] : counts) total += v;
  EXPECT_EQ(total, 400u);
  // Both outcomes possible.
  EXPECT_EQ(counts.size(), 2u);
}

TEST(Simulator, ExpectationGhzParity) {
  // GHZ: <Z...Z> = 0 for odd parity observable <ZIII>, but <ZZZZ>... for
  // GHZ_4: <ZZZZ> = 1, <ZIII> = 0, <XXXX> = 1.
  Circuit c = qc::ghz(4);
  Simulator<double> sim;
  qc::PauliOperator zzzz(4), ziii(4), xxxx(4);
  zzzz.add(1.0, "ZZZZ");
  ziii.add(1.0, "ZIII");
  xxxx.add(1.0, "XXXX");
  EXPECT_NEAR(sim.expectation(c, zzzz), 1.0, 1e-10);
  EXPECT_NEAR(sim.expectation(c, ziii), 0.0, 1e-10);
  EXPECT_NEAR(sim.expectation(c, xxxx), 1.0, 1e-10);
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  Circuit c(2);
  c.h(0).h(1).measure_all();
  SimulatorOptions opts;
  opts.seed = 99;
  Simulator<double> a(opts), b(opts);
  EXPECT_EQ(a.sample_counts(c, 50), b.sample_counts(c, 50));
}

TEST(Simulator, FloatPrecisionRunsAgreeApproximately) {
  const Circuit c = qc::qft(6);
  Simulator<double> d;
  Simulator<float> f;
  const auto vd = d.run(c).to_vector();
  const auto vf = f.run(c).to_vector();
  for (std::size_t i = 0; i < vd.size(); ++i)
    EXPECT_NEAR(std::abs(vd[i] - vf[i]), 0.0, 1e-4);
}

TEST(Simulator, GroverEndToEnd) {
  const unsigned n = 6;
  const std::uint64_t marked = 37;
  Simulator<double> sim;
  const auto sv = sim.run(qc::grover(n, marked));
  EXPECT_GT(sv.probability(marked), 0.9);
}

TEST(Simulator, ApplyGateRejectsMeasure) {
  StateVector<double> sv(1);
  EXPECT_THROW(apply_gate(sv, Gate::measure(0, 0)), Error);
  EXPECT_THROW(apply_gate(sv, Gate::reset(0)), Error);
}

TEST(Simulator, ApplyGateRejectsOutOfRange) {
  StateVector<double> sv(2);
  EXPECT_THROW(apply_gate(sv, Gate::h(5)), Error);
}

}  // namespace
}  // namespace svsim::sv
