#include "qc/qasm.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"

namespace svsim::qc {
namespace {

TEST(QasmParse, MinimalProgram) {
  const Circuit c = parse_qasm(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0],q[1];
    measure q[0] -> c[0];
  )");
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(2).kind, GateKind::MEASURE);
}

TEST(QasmParse, ParameterExpressions) {
  const Circuit c = parse_qasm(R"(
    qreg q[1];
    rz(pi/2) q[0];
    rx(-pi/4) q[0];
    p(2*pi/8 + 0.5) q[0];
    ry(cos(0)) q[0];
  )");
  EXPECT_NEAR(c.gate(0).params[0], std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(c.gate(1).params[0], -std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(c.gate(2).params[0], std::numbers::pi / 4 + 0.5, 1e-12);
  EXPECT_NEAR(c.gate(3).params[0], 1.0, 1e-12);
}

TEST(QasmParse, U2AndU3Spellings) {
  const Circuit c = parse_qasm(R"(
    qreg q[1];
    u3(0.1,0.2,0.3) q[0];
    u2(0.4,0.5) q[0];
    u1(0.6) q[0];
  )");
  EXPECT_EQ(c.gate(0).kind, GateKind::U);
  EXPECT_EQ(c.gate(1).kind, GateKind::U);
  EXPECT_NEAR(c.gate(1).params[0], std::numbers::pi / 2, 1e-12);
  EXPECT_EQ(c.gate(2).kind, GateKind::P);
}

TEST(QasmParse, MultipleRegistersFlatten) {
  const Circuit c = parse_qasm(R"(
    qreg a[2];
    qreg b[3];
    creg m[5];
    x a[1];
    x b[0];
    measure b[2] -> m[4];
  )");
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.gate(0).qubits[0], 1u);  // a[1]
  EXPECT_EQ(c.gate(1).qubits[0], 2u);  // b[0] offset by |a|
  EXPECT_EQ(c.gate(2).qubits[0], 4u);
  EXPECT_EQ(c.gate(2).cbit, 4u);
}

TEST(QasmParse, CommentsAndWhitespace) {
  const Circuit c = parse_qasm(
      "// header comment\nqreg q[1];\nx q[0]; // trailing\n// done\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmParse, BarrierResetAndThreeQubitGates) {
  const Circuit c = parse_qasm(R"(
    qreg q[3];
    ccx q[0],q[1],q[2];
    cswap q[0],q[1],q[2];
    barrier q;
    reset q[1];
  )");
  EXPECT_EQ(c.gate(0).kind, GateKind::CCX);
  EXPECT_EQ(c.gate(1).kind, GateKind::CSWAP);
  EXPECT_EQ(c.gate(2).kind, GateKind::BARRIER);
  EXPECT_EQ(c.gate(3).kind, GateKind::RESET);
}

TEST(QasmParse, Errors) {
  EXPECT_THROW(parse_qasm("x q[0];"), Error);            // gate before qreg
  EXPECT_THROW(parse_qasm("qreg q[1]; bogus q[0];"), Error);
  EXPECT_THROW(parse_qasm("qreg q[1]; x q[5];"), Error);  // out of range
  EXPECT_THROW(parse_qasm("qreg q[1]; x r[0];"), Error);  // unknown register
  EXPECT_THROW(parse_qasm("qreg q[2]; cx q[0];"), Error); // operand count
  EXPECT_THROW(parse_qasm("qreg q[1]; x q[0]"), Error);   // missing ';'
  EXPECT_THROW(parse_qasm(""), Error);                    // no qreg
}

TEST(QasmParse, RegisterAfterGateRejected) {
  EXPECT_THROW(parse_qasm("qreg q[1]; x q[0]; qreg r[1];"), Error);
}

TEST(QasmRoundTrip, SerializeThenParsePreservesSemantics) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(2).rz(1, 0.7).cp(0, 2, 0.3).swap(1, 2).ccx(0, 1, 2)
      .u(0, 0.1, 0.2, 0.3).rzz(0, 1, 0.9).sx(2);
  const std::string qasm = to_qasm(c);
  const Circuit back = parse_qasm(qasm);
  ASSERT_EQ(back.size(), c.size());
  EXPECT_LT(dense::distance(dense::run(c), dense::run(back)), 1e-12);
}

TEST(QasmRoundTrip, QftSurvivesRoundTrip) {
  const Circuit c = qft(4);
  const Circuit back = parse_qasm(to_qasm(c));
  EXPECT_LT(dense::distance(dense::run(c), dense::run(back)), 1e-10);
}

TEST(QasmRoundTrip, MeasureAndBarrier) {
  Circuit c(2);
  c.h(0).barrier().measure(0, 1);
  const Circuit back = parse_qasm(to_qasm(c));
  EXPECT_EQ(back.gate(2).kind, GateKind::MEASURE);
  EXPECT_EQ(back.gate(2).cbit, 1u);
}

TEST(QasmSerialize, RejectsNonQasmGates) {
  Circuit c(2);
  c.append(Gate::mcp({0}, 1, 0.5));
  EXPECT_THROW(to_qasm(c), Error);
}


TEST(QasmGateDef, SimpleMacroExpansion) {
  const Circuit c = parse_qasm(R"(
    qreg q[2];
    gate bell a,b { h a; cx a,b; }
    bell q[0],q[1];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(0).qubits[0], 0u);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(1).qubits, (std::vector<unsigned>{0, 1}));
}

TEST(QasmGateDef, ParameterizedMacro) {
  const Circuit c = parse_qasm(R"(
    qreg q[1];
    gate tilt(theta, phi) a { rz(phi) a; rx(theta/2) a; }
    tilt(pi, pi/4) q[0];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c.gate(0).params[0], std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(c.gate(1).params[0], std::numbers::pi / 2, 1e-12);
}

TEST(QasmGateDef, NestedMacros) {
  const Circuit c = parse_qasm(R"(
    qreg q[3];
    gate pair a,b { h a; cx a,b; }
    gate chain a,b,c { pair a,b; pair b,c; }
    chain q[0],q[1],q[2];
  )");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(3).qubits, (std::vector<unsigned>{1, 2}));
}

TEST(QasmGateDef, MacroReusedWithDifferentOperands) {
  const Circuit c = parse_qasm(R"(
    qreg q[4];
    gate flip a { x a; }
    flip q[0];
    flip q[3];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).qubits[0], 0u);
  EXPECT_EQ(c.gate(1).qubits[0], 3u);
}

TEST(QasmGateDef, MacroSemanticsMatchInline) {
  const Circuit macro = parse_qasm(R"(
    qreg q[2];
    gate mix(t) a,b { ry(t) a; cx a,b; rz(t*2) b; }
    mix(0.7) q[1],q[0];
  )");
  Circuit inline_version(2);
  inline_version.ry(1, 0.7).cx(1, 0).rz(0, 1.4);
  EXPECT_LT(dense::distance(dense::run(macro), dense::run(inline_version)),
            1e-12);
}

TEST(QasmGateDef, Errors) {
  // Arity mismatch.
  EXPECT_THROW(parse_qasm(R"(
    qreg q[2];
    gate g a,b { cx a,b; }
    g q[0];
  )"), Error);
  // Unknown formal qubit in body.
  EXPECT_THROW(parse_qasm(R"(
    qreg q[1];
    gate g a { x b; }
    g q[0];
  )"), Error);
  // Recursive definition hits the depth limit.
  EXPECT_THROW(parse_qasm(R"(
    qreg q[1];
    gate loop a { loop a; }
    loop q[0];
  )"), Error);
  // Measure inside a body is rejected.
  EXPECT_THROW(parse_qasm(R"(
    qreg q[1];
    creg c[1];
    gate g a { measure a -> c[0]; }
    g q[0];
  )"), Error);
  // Unterminated body.
  EXPECT_THROW(parse_qasm("qreg q[1]; gate g a { x a;"), Error);
}

TEST(QasmGateDef, BodyMayUseRegistersOnlyViaFormals) {
  // A register reference with [index] inside a body still resolves (QASM
  // forbids it, but our parser allows it harmlessly for robustness) — the
  // important property is that bare formals always win.
  const Circuit c = parse_qasm(R"(
    qreg q[2];
    gate g a { x a; }
    g q[1];
  )");
  EXPECT_EQ(c.gate(0).qubits[0], 1u);
}

TEST(QasmFile, MissingFileThrows) {
  EXPECT_THROW(parse_qasm_file("/nonexistent/path.qasm"), Error);
}

}  // namespace
}  // namespace svsim::qc
