// ExecutionContext regression tests.
//
// The stale-handle bug class these tests guard against: a layer caching a
// `Counter&` in a function-local static pins the FIRST registry it ever saw,
// so after a caller substitutes a registry through the context, increments
// keep landing in the old one. Every test here therefore (1) warms the
// default/global path once, then (2) substitutes a fresh registry via an
// ExecutionContext and asserts the counters land in the new registry and
// the global counts stay frozen.
#include "obs/context.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "dist/dist_plan.hpp"
#include "dist/dist_sim.hpp"
#include "dist/timeline.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/plan.hpp"
#include "sv/simd/simd.hpp"
#include "sv/state_vector.hpp"

namespace svsim {
namespace {

sv::ExecutionPlan small_plan() {
  const qc::Circuit c = qc::qft(4);
  return sv::compile_plan(c, sv::PlanOptions{});
}

std::uint64_t global_count(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

TEST(ExecutionContext, DefaultResolvesToProcessSingletons) {
  const ExecutionContext& ctx = ExecutionContext::global();
  EXPECT_EQ(&ctx.metrics(), &obs::MetricsRegistry::global());
  EXPECT_EQ(&ctx.tracer(), &obs::Tracer::global());
  EXPECT_EQ(&ctx.pool(), &ThreadPool::global());
  EXPECT_EQ(ctx.profiler(), obs::Profiler::current());
  EXPECT_EQ(ctx.config().simd_isa, -1);
  EXPECT_EQ(ctx.config().element_bytes, 8u);
}

TEST(ExecutionContext, RunPlanCountersLandInSubstitutedRegistry) {
  const sv::ExecutionPlan plan = small_plan();

  // Warm the global path: a stale-handle implementation resolves (and
  // pins) its counter references on this first call.
  sv::StateVector<double> warm(plan.num_qubits);
  sv::run_plan(warm, plan);
  const std::uint64_t frozen = global_count("plan.executions");

  obs::MetricsRegistry mine;
  ExecutionContext ctx;
  ctx.with_metrics(mine);
  sv::StateVector<double> state(plan.num_qubits);
  sv::run_plan(state, plan, {}, ctx);

  EXPECT_EQ(mine.counter("plan.executions").value(), 1u);
  EXPECT_GE(mine.counter("plan.phases_executed").value(), 1u);
  EXPECT_EQ(global_count("plan.executions"), frozen);
}

TEST(ExecutionContext, SimdDispatchCountsFollowRegistry) {
  // Warm the global path first, then count into a private registry.
  sv::simd::count_dispatch(sv::KernelClass::Hadamard);
  const std::uint64_t frozen = global_count("sv.simd.dispatch.h");

  obs::MetricsRegistry mine;
  sv::simd::count_dispatch(sv::KernelClass::Hadamard, mine);
  sv::simd::count_dispatch(sv::KernelClass::Hadamard, mine);
  EXPECT_EQ(mine.counter("sv.simd.dispatch.h").value(), 2u);
  EXPECT_EQ(global_count("sv.simd.dispatch.h"), frozen);
}

TEST(ExecutionContext, CompilePathMetricsFollowOptionsRegistry) {
  const qc::Circuit c = qc::qft(6);
  sv::PlanOptions warm_po;
  warm_po.fusion = true;
  sv::compile_plan(c, warm_po);  // warm the global path
  const std::uint64_t frozen = global_count("plan.compiles");

  obs::MetricsRegistry mine;
  sv::PlanOptions po;
  po.fusion = true;
  po.metrics = &mine;
  sv::compile_plan(c, po);
  EXPECT_EQ(mine.counter("plan.compiles").value(), 1u);
  EXPECT_GE(mine.counter("fusion.blocks").value(), 1u);
  EXPECT_EQ(global_count("plan.compiles"), frozen);
}

TEST(ExecutionContext, TimePlanMetricsFollowContext) {
  const qc::Circuit c = qc::qft(6);
  const sv::ExecutionPlan plan = dist::compile_distributed(c, 1, {});
  const machine::MachineSpec m = machine::MachineSpec::a64fx();
  const dist::InterconnectSpec net = dist::InterconnectSpec::tofu_d();

  dist::time_plan(plan, m, {}, net);  // warm the global path
  const std::uint64_t frozen = global_count("dist.plan_evals");

  obs::MetricsRegistry mine;
  ExecutionContext ctx;
  ctx.with_metrics(mine);
  dist::time_plan(plan, m, {}, net, ctx);
  EXPECT_EQ(mine.counter("dist.plan_evals").value(), 1u);
  // The embedded cost-model evaluation threads through the same context.
  EXPECT_EQ(mine.counter("perf.plan_cost_evals").value(), 1u);
  EXPECT_GE(mine.counter("dist.exchanges").value(), 1u);
  EXPECT_EQ(global_count("dist.plan_evals"), frozen);
}

TEST(ExecutionContext, RecordTimelineMetricsFollowContext) {
  const qc::Circuit c = qc::qft(6);
  const sv::ExecutionPlan plan = dist::compile_distributed(c, 1, {});
  const machine::MachineSpec m = machine::MachineSpec::a64fx();
  const dist::InterconnectSpec net = dist::InterconnectSpec::tofu_d();

  dist::record_timeline(plan, m, {}, net);  // warm the global path
  const std::uint64_t frozen = global_count("dist.timeline.records");

  obs::MetricsRegistry mine;
  ExecutionContext ctx;
  ctx.with_metrics(mine);
  const dist::Timeline t = dist::record_timeline(plan, m, {}, net, {}, ctx);
  EXPECT_EQ(mine.counter("dist.timeline.records").value(), 1u);
  EXPECT_EQ(mine.counter("dist.timeline.events").value(), t.total_events());
  EXPECT_GT(mine.gauge("dist.timeline.makespan_seconds").value(), 0.0);
  EXPECT_EQ(global_count("dist.timeline.records"), frozen);
}

TEST(ExecutionContext, CostPlanMetricsFollowContext) {
  const sv::ExecutionPlan plan = small_plan();
  const machine::MachineSpec m = machine::MachineSpec::a64fx();

  perf::cost_plan(plan, m, {});  // warm the global path
  const std::uint64_t frozen = global_count("perf.plan_cost_evals");

  obs::MetricsRegistry mine;
  ExecutionContext ctx;
  ctx.with_metrics(mine);
  perf::cost_plan(plan, m, {}, ctx);
  EXPECT_EQ(mine.counter("perf.plan_cost_evals").value(), 1u);
  EXPECT_EQ(global_count("perf.plan_cost_evals"), frozen);
}

TEST(ExecutionContext, SpansRecordIntoSubstitutedTracer) {
  obs::Tracer tracer;
  tracer.enable();
  ExecutionContext ctx;
  ctx.with_tracer(tracer);

  const sv::ExecutionPlan plan = small_plan();
  sv::StateVector<double> state(plan.num_qubits);
  sv::run_plan(state, plan, {}, ctx);

  const auto spans = tracer.collect();
  ASSERT_FALSE(spans.empty());
  bool saw_kernel = false;
  for (const auto& s : spans)
    saw_kernel = saw_kernel || s.category == obs::SpanCategory::Kernel;
  EXPECT_TRUE(saw_kernel);
}

TEST(ExecutionContext, WithProfilerNullSuppressesInstalledProfiler) {
  obs::Profiler profiler;
  profiler.install();
  const sv::ExecutionPlan plan = small_plan();

  ExecutionContext quiet;
  quiet.with_profiler(nullptr);
  sv::StateVector<double> state(plan.num_qubits);
  sv::run_plan(state, plan, {}, quiet);
  EXPECT_EQ(profiler.runs_recorded(), 0u);

  // The default context follows the installed profiler dynamically.
  sv::StateVector<double> state2(plan.num_qubits);
  sv::run_plan(state2, plan);
  EXPECT_EQ(profiler.runs_recorded(), 1u);
  profiler.uninstall();
}

TEST(ExecutionContext, PinnedProfilerRecordsWithoutInstall) {
  obs::Profiler profiler;  // never installed process-wide
  ExecutionContext ctx;
  ctx.with_profiler(&profiler);

  const sv::ExecutionPlan plan = small_plan();
  sv::StateVector<double> state(plan.num_qubits);
  sv::run_plan(state, plan, {}, ctx);
  EXPECT_EQ(profiler.runs_recorded(), 1u);
  ASSERT_EQ(profiler.runs().size(), 1u);
  EXPECT_EQ(profiler.runs()[0].phases.size(), plan.phases.size());
}

TEST(ExecutionContext, PoolOverrideIsUsedForResolution) {
  ThreadPool mine(1);
  ExecutionContext ctx;
  ctx.with_pool(mine);
  EXPECT_EQ(&ctx.pool(), &mine);
  EXPECT_EQ(ctx.pool().num_threads(), 1u);
}

}  // namespace
}  // namespace svsim
