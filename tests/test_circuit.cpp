#include "qc/circuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qc/dense.hpp"

namespace svsim::qc {
namespace {

TEST(Circuit, ConstructionAndDefaults) {
  Circuit c(5);
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.num_clbits(), 5u);  // defaults to one per qubit
  EXPECT_TRUE(c.empty());
  Circuit c2(4, 2);
  EXPECT_EQ(c2.num_clbits(), 2u);
  EXPECT_THROW(Circuit(0), Error);
}

TEST(Circuit, FluentBuilderChains) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.5).barrier().measure(2, 0);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(5).kind, GateKind::MEASURE);
}

TEST(Circuit, RejectsOutOfRangeOperands) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.cx(0, 5), Error);
  EXPECT_THROW(c.measure(0, 7), Error);
}

TEST(Circuit, DepthComputation) {
  Circuit c(3);
  EXPECT_EQ(c.depth(), 0u);
  c.h(0);         // layer 1 on q0
  c.h(1);         // layer 1 on q1
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);     // layer 2
  EXPECT_EQ(c.depth(), 2u);
  c.h(2);         // layer 1 on q2 (independent)
  EXPECT_EQ(c.depth(), 2u);
  c.cx(1, 2);     // layer 3
  EXPECT_EQ(c.depth(), 3u);
  c.barrier();    // ignored by depth
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, GateCountsHistogram) {
  Circuit c(2);
  c.h(0).h(1).cx(0, 1).t(0).t(1).t(0);
  const auto counts = c.gate_counts();
  EXPECT_EQ(counts.at("h"), 2u);
  EXPECT_EQ(counts.at("cx"), 1u);
  EXPECT_EQ(counts.at("t"), 3u);
  EXPECT_EQ(c.multi_qubit_gate_count(), 1u);
}

TEST(Circuit, IsUnitaryDetection) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  EXPECT_TRUE(c.is_unitary());
  c.barrier();
  EXPECT_TRUE(c.is_unitary());
  c.measure(0, 0);
  EXPECT_FALSE(c.is_unitary());
}

TEST(Circuit, ComposeAppendsGates) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cx(0, 1);
  a.compose(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wrong(3);
  EXPECT_THROW(a.compose(wrong), Error);
}

TEST(Circuit, InverseUndoesCircuit) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(1).rz(2, 0.7).iswap(1, 2).ccx(0, 1, 2);
  Circuit round_trip = c;
  round_trip.compose(c.inverse());
  const auto state = dense::run(round_trip);
  // Must be |000> up to global phase.
  EXPECT_NEAR(std::abs(state[0]), 1.0, 1e-10);
  for (std::size_t i = 1; i < state.size(); ++i)
    EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-10);
}

TEST(Circuit, InverseReversesOrder) {
  Circuit c(2);
  c.h(0).s(0);
  const Circuit inv = c.inverse();
  EXPECT_EQ(inv.gate(0).kind, GateKind::Sdg);
  EXPECT_EQ(inv.gate(1).kind, GateKind::H);
}

TEST(Circuit, InverseRejectsMeasurement) {
  Circuit c(1);
  c.h(0).measure(0, 0);
  EXPECT_THROW(c.inverse(), Error);
}

TEST(Circuit, RemapPermutesOperands) {
  Circuit c(3);
  c.h(0).cx(0, 2);
  const Circuit r = c.remap({2, 1, 0});
  EXPECT_EQ(r.gate(0).qubits[0], 2u);
  EXPECT_EQ(r.gate(1).qubits, (std::vector<unsigned>{2, 0}));
}

TEST(Circuit, RemapValidatesPermutation) {
  Circuit c(3);
  c.h(0);
  EXPECT_THROW(c.remap({0, 1}), Error);        // wrong size
  EXPECT_THROW(c.remap({0, 0, 1}), Error);     // not a permutation
  EXPECT_THROW(c.remap({0, 1, 5}), Error);     // out of range
}

TEST(Circuit, RemapPreservesSemanticsUnderConjugation) {
  // remap(p) then computing the state equals permuting the qubits of the
  // original state.
  Circuit c(3);
  c.h(0).cx(0, 1).t(2).cz(1, 2);
  const std::vector<unsigned> perm = {1, 2, 0};
  const auto direct = dense::run(c.remap(perm));
  const auto base = dense::run(c);
  // base amplitude at index i moves to the index with bits permuted.
  for (std::uint64_t i = 0; i < base.size(); ++i) {
    std::uint64_t j = 0;
    for (unsigned q = 0; q < 3; ++q)
      if ((i >> q) & 1) j |= std::uint64_t{1} << perm[q];
    EXPECT_NEAR(std::abs(direct[j] - base[i]), 0.0, 1e-12);
  }
}

TEST(Circuit, MeasureAll) {
  Circuit c(3);
  c.h(0).measure_all();
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(3).kind, GateKind::MEASURE);
  EXPECT_EQ(c.gate(3).cbit, 2u);
}

TEST(Circuit, ToStringMentionsStructure) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("2 qubits"), std::string::npos);
  EXPECT_NE(s.find("cx q[0],q[1]"), std::string::npos);
}

}  // namespace
}  // namespace svsim::qc
