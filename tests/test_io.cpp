#include "sv/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "qc/library.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {
namespace {

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "/svsim_io_" + tag + ".bin";
}

TEST(StateIo, RoundTripDouble) {
  Simulator<double> sim;
  const auto state = sim.run(qc::qft(8));
  const std::string path = temp_path("rt_double");
  save_state(state, path);
  const auto loaded = load_state<double>(path);
  EXPECT_EQ(loaded.num_qubits(), 8u);
  EXPECT_EQ(loaded.to_vector(), state.to_vector());
  std::remove(path.c_str());
}

TEST(StateIo, RoundTripFloat) {
  Simulator<float> sim;
  const auto state = sim.run(qc::ghz(6));
  const std::string path = temp_path("rt_float");
  save_state(state, path);
  const auto loaded = load_state<float>(path);
  EXPECT_EQ(loaded.to_vector(), state.to_vector());
  std::remove(path.c_str());
}

TEST(StateIo, CrossPrecisionLoad) {
  Simulator<double> sim;
  const auto state = sim.run(qc::qft(7));
  const std::string path = temp_path("cross");
  save_state(state, path);
  const auto as_float = load_state<float>(path);
  const auto a = state.to_vector();
  const auto b = as_float.to_vector();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-6);
  // And float file into double register.
  const std::string path2 = temp_path("cross2");
  save_state(as_float, path2);
  const auto back = load_state<double>(path2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - back.to_vector()[i]), 0.0, 1e-6);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(StateIo, CheckpointResumeMatchesStraightRun) {
  // Run the first half, save, load, run the second half: identical to the
  // uninterrupted run.
  const qc::Circuit full = qc::qft(8);
  qc::Circuit first(8), second(8);
  for (std::size_t i = 0; i < full.size(); ++i)
    (i < full.size() / 2 ? first : second).append(full.gate(i));

  Simulator<double> sim;
  const auto direct = sim.run(full);

  auto half = sim.run(first);
  const std::string path = temp_path("resume");
  save_state(half, path);
  auto resumed = load_state<double>(path);
  sim.run_in_place(resumed, second);
  EXPECT_EQ(resumed.to_vector(), direct.to_vector());
  std::remove(path.c_str());
}

TEST(StateIo, RejectsGarbageAndMissingFiles) {
  EXPECT_THROW(load_state<double>("/nonexistent/state.bin"), Error);
  const std::string path = temp_path("garbage");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a state file at all";
  }
  EXPECT_THROW(load_state<double>(path), Error);
  std::remove(path.c_str());
}

TEST(StateIo, RejectsTruncatedFile) {
  Simulator<double> sim;
  const auto state = sim.run(qc::ghz(6));
  const std::string path = temp_path("trunc");
  save_state(state, path);
  // Truncate the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    contents.resize(contents.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  EXPECT_THROW(load_state<double>(path), Error);
  std::remove(path.c_str());
}

TEST(KernelVariant, PairwiseMatchesRunBlocked) {
  const unsigned n = 10;
  Xoshiro256 rng(3);
  const qc::Matrix u = qc::Matrix::random_unitary(2, rng);
  for (unsigned t = 0; t < n; t += 3) {
    StateVector<double> a(n), b(n);
    Simulator<double> prep;
    // Identical random-ish states.
    for (unsigned q = 0; q < n; ++q) {
      apply_gate(a, qc::Gate::h(q));
      apply_gate(b, qc::Gate::h(q));
      apply_gate(a, qc::Gate::t(q));
      apply_gate(b, qc::Gate::t(q));
    }
    apply_matrix1(a.data(), n, t, u, a.pool());
    apply_matrix1_pairwise(b.data(), n, t, u, b.pool());
    // The two variants may contract FMAs differently; allow FP slack.
    const auto va = a.to_vector();
    const auto vb = b.to_vector();
    double dist = 0.0;
    for (std::size_t i = 0; i < va.size(); ++i)
      dist = std::max(dist, std::abs(va[i] - vb[i]));
    EXPECT_LT(dist, 1e-12) << "target " << t;
  }
}

}  // namespace
}  // namespace svsim::sv
