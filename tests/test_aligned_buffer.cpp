#include "common/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <numeric>

namespace svsim {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<double> b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesRequestedCount) {
  AlignedBuffer<std::complex<double>> b(1024);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_NE(b.data(), nullptr);
}

TEST(AlignedBuffer, RespectsAlignment) {
  for (std::size_t align : {64u, 256u, 4096u}) {
    AlignedBuffer<double> b(100, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % align, 0u)
        << "alignment " << align;
  }
}

TEST(AlignedBuffer, ElementAccessAndIteration) {
  AlignedBuffer<int> b(16);
  std::iota(b.begin(), b.end(), 0);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_EQ(b[i], static_cast<int>(i));
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[0] = 42;
  int* ptr = a.data();
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<int> a(8);
  AlignedBuffer<int> b(4);
  a[0] = 7;
  b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 7);
}

TEST(AlignedBuffer, OddSizeRoundsAllocationNotSize) {
  // 3 doubles with 256-byte alignment: size stays 3.
  AlignedBuffer<double> b(3, 256);
  EXPECT_EQ(b.size(), 3u);
  b[2] = 1.5;
  EXPECT_DOUBLE_EQ(b[2], 1.5);
}

TEST(AlignedBuffer, ZeroCount) {
  AlignedBuffer<double> b(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.begin(), b.end());
}

}  // namespace
}  // namespace svsim
