#include "obs/hwcounters.hpp"

#include <gtest/gtest.h>

#include <string>

namespace svsim::obs {
namespace {

// Burn enough work that, when counters are available, every event count is
// comfortably nonzero.
std::uint64_t busy_work() {
  volatile std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < 200000; ++i) acc = acc * 6364136223846793005ULL + i;
  return acc;
}

TEST(HwCounters, ScopeIsValidIffCountersAvailable) {
  HwCounterScope scope;
  busy_work();
  const HwCounterValues values = scope.stop();
  EXPECT_EQ(values.valid, HwCounterScope::available());
  if (values.valid) {
    EXPECT_GT(values.cycles, 0u);
    EXPECT_GT(values.instructions, 0u);
    EXPECT_GT(values.ipc(), 0.0);
  } else {
    // Graceful fallback: all-zero sample, no crash.
    EXPECT_EQ(values.cycles, 0u);
    EXPECT_EQ(values.instructions, 0u);
    EXPECT_EQ(values.cache_misses, 0u);
    EXPECT_EQ(values.ipc(), 0.0);
  }
}

TEST(HwCounters, StopIsIdempotent) {
  HwCounterScope scope;
  busy_work();
  const HwCounterValues first = scope.stop();
  busy_work();
  const HwCounterValues second = scope.stop();
  EXPECT_EQ(first.valid, second.valid);
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(first.cache_misses, second.cache_misses);
}

TEST(HwCounters, TableRendersEitherWay) {
  HwCounterScope scope;
  const Table t = hw_counter_table(scope.stop());
  ASSERT_EQ(t.num_rows(), 1u);
  const auto& row = t.row(0);
  if (HwCounterScope::available()) {
    EXPECT_EQ(std::get<std::string>(row[0]), "yes");
    EXPECT_TRUE(std::holds_alternative<std::int64_t>(row[1]));
  } else {
    EXPECT_EQ(std::get<std::string>(row[0]), "no");
    EXPECT_EQ(std::get<std::string>(row[1]), "-");
  }
}

TEST(HwCounters, InvalidSampleIpcIsZero) {
  HwCounterValues v;
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.ipc(), 0.0);
}

}  // namespace
}  // namespace svsim::obs
