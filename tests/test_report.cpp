#include "perf/report.hpp"

#include <gtest/gtest.h>

#include "qc/library.hpp"

namespace svsim::perf {
namespace {

PerfReport sample_report(bool with_trace) {
  PerfOptions opts;
  opts.record_trace = with_trace;
  return simulate_circuit(qc::qft(18), machine::MachineSpec::a64fx(), {},
                          opts);
}

TEST(Report, SummaryHasOneRow) {
  const Table t = summary_table(sample_report(false));
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.to_text().find("A64FX"), std::string::npos);
}

TEST(Report, KernelBreakdownSharesSumToOne) {
  const Table t = kernel_breakdown_table(sample_report(false));
  EXPECT_GE(t.num_rows(), 2u);  // QFT uses h, mcphase, swap
  double total = 0.0;
  for (std::size_t i = 0; i < t.num_rows(); ++i)
    total += std::get<double>(t.row(i)[2]);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Report, BreakdownSortedDescending) {
  const Table t = kernel_breakdown_table(sample_report(false));
  for (std::size_t i = 1; i < t.num_rows(); ++i)
    EXPECT_GE(std::get<double>(t.row(i - 1)[1]),
              std::get<double>(t.row(i)[1]));
}

TEST(Report, TraceTableRespectsCap) {
  const Table t = trace_table(sample_report(true), 10);
  EXPECT_EQ(t.num_rows(), 10u);
  const Table empty = trace_table(sample_report(false), 10);
  EXPECT_EQ(empty.num_rows(), 0u);
}

TEST(Report, ComparisonNormalizesToFirst) {
  const auto a = sample_report(false);
  const Table t = comparison_table({{"one", a}, {"two", a}});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_NEAR(std::get<double>(t.row(0)[4]), 1.0, 1e-12);
  EXPECT_NEAR(std::get<double>(t.row(1)[4]), 1.0, 1e-12);
}

TEST(Report, PowerTable) {
  const auto p = estimate_power(qc::qft(18), machine::MachineSpec::a64fx(),
                                {});
  const Table t = power_table({{"normal", p}});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_GT(std::get<double>(t.row(0)[2]), 0.0);
}

}  // namespace
}  // namespace svsim::perf
