#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace svsim {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table("t", {}), Error);
}

TEST(Table, RejectsWrongRowWidth) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), Error);
  EXPECT_NO_THROW(t.add_row({std::string("x"), 1.0}));
}

TEST(Table, FormatsCellTypes) {
  EXPECT_EQ(format_cell(std::string("abc"), 3), "abc");
  EXPECT_EQ(format_cell(std::int64_t{42}, 3), "42");
  EXPECT_EQ(format_cell(3.14159, 3), "3.142");
}

TEST(Table, TextRenderingContainsHeaderAndRows) {
  Table t("My Title", {"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{1}});
  t.add_row({std::string("beta"), 2.5});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("My Title"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.500"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t("t", {"a", "b"});
  t.add_row({std::string("x"), std::int64_t{7}});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\nx,7\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t("t", {"a"});
  t.add_row({std::string("hello, \"world\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, RowAccessors) {
  Table t("t", {"a", "b", "c"});
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[2]), 3);
}

TEST(Table, PrintWritesToStream) {
  Table t("stream me", {"x"});
  t.add_row({std::int64_t{9}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("stream me"), std::string::npos);
}

}  // namespace
}  // namespace svsim
