#include "qc/library.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/dense.hpp"

namespace svsim::qc {
namespace {

TEST(LibraryQft, MatchesDftMatrix) {
  // QFT (with swaps) |k> = 1/√N Σ_j ω^{jk} |j>, ω = e^{2πi/N}.
  for (unsigned n : {2u, 3u, 4u}) {
    const Matrix u = dense::circuit_unitary(qft(n, true));
    const double N = static_cast<double>(pow2(n));
    for (std::uint64_t r = 0; r < pow2(n); ++r) {
      for (std::uint64_t c = 0; c < pow2(n); ++c) {
        const cplx expect =
            std::polar(1.0 / std::sqrt(N),
                       2.0 * std::numbers::pi * static_cast<double>(r * c) / N);
        EXPECT_NEAR(std::abs(u(r, c) - expect), 0.0, 1e-10)
            << "n=" << n << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(LibraryQft, InverseQftUndoesQft) {
  for (unsigned n : {2u, 4u, 5u}) {
    Circuit c = qft(n);
    c.compose(inverse_qft(n));
    const Matrix u = dense::circuit_unitary(c);
    EXPECT_LT(u.distance(Matrix::identity(pow2(n))), 1e-10) << "n=" << n;
  }
}

TEST(LibraryQft, WithoutSwapsIsBitReversedDft) {
  const unsigned n = 3;
  const Matrix with = dense::circuit_unitary(qft(n, true));
  const Matrix without = dense::circuit_unitary(qft(n, false));
  // with = SWAP_layer * without: rows of `without` are bit-reversed.
  for (std::uint64_t r = 0; r < pow2(n); ++r)
    for (std::uint64_t c = 0; c < pow2(n); ++c)
      EXPECT_NEAR(std::abs(without(reverse_bits(r, n), c) - with(r, c)), 0.0,
                  1e-10);
}

TEST(LibraryGhz, ProducesGhzState) {
  for (unsigned n : {2u, 3u, 6u}) {
    const auto s = dense::run(ghz(n));
    EXPECT_NEAR(std::abs(s[0]), 1 / std::numbers::sqrt2, 1e-12);
    EXPECT_NEAR(std::abs(s[pow2(n) - 1]), 1 / std::numbers::sqrt2, 1e-12);
    for (std::uint64_t i = 1; i + 1 < pow2(n); ++i)
      EXPECT_NEAR(std::abs(s[i]), 0.0, 1e-12);
  }
}

TEST(LibraryGrover, AmplifiesMarkedItem) {
  const unsigned n = 5;
  const std::uint64_t marked = 19;
  const auto s = dense::run(grover(n, marked));
  const double p_marked = std::norm(s[marked]);
  EXPECT_GT(p_marked, 0.9);
  // All other amplitudes tiny.
  for (std::uint64_t i = 0; i < pow2(n); ++i)
    if (i != marked) EXPECT_LT(std::norm(s[i]), 0.01);
}

TEST(LibraryGrover, OptimalIterationCount) {
  EXPECT_EQ(grover_optimal_iterations(2), 1u);
  EXPECT_EQ(grover_optimal_iterations(4), 3u);
  EXPECT_EQ(grover_optimal_iterations(10), 25u);
}

TEST(LibraryGrover, SingleIterationIsWorseThanOptimal) {
  const unsigned n = 5;
  const std::uint64_t marked = 7;
  const auto s1 = dense::run(grover(n, marked, 1));
  const auto sopt = dense::run(grover(n, marked));
  EXPECT_LT(std::norm(s1[marked]), std::norm(sopt[marked]));
}

TEST(LibraryQuantumVolume, DeterministicInSeed) {
  const Circuit a = random_quantum_volume(5, 4, 77);
  const Circuit b = random_quantum_volume(5, 4, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.gate(i).qubits, b.gate(i).qubits);
  const Circuit c = random_quantum_volume(5, 4, 78);
  // Different seed gives a different pairing or matrices; compare states.
  EXPECT_GT(dense::distance(dense::run(a), dense::run(c)), 1e-6);
}

TEST(LibraryQuantumVolume, LayerStructure) {
  const unsigned n = 6, depth = 3;
  const Circuit c = random_quantum_volume(n, depth, 1);
  // Each layer has floor(n/2) two-qubit unitaries.
  EXPECT_EQ(c.size(), static_cast<std::size_t>(depth) * (n / 2));
  for (const auto& g : c.gates()) EXPECT_EQ(g.kind, GateKind::U2Q);
  // Norm preserved.
  EXPECT_NEAR(dense::norm_squared(dense::run(c)), 1.0, 1e-10);
}

TEST(LibraryCliffordT, DeterministicAndUnitary) {
  const Circuit a = random_clifford_t(4, 50, 5);
  const Circuit b = random_clifford_t(4, 50, 5);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.gate(i).kind, b.gate(i).kind);
  EXPECT_NEAR(dense::norm_squared(dense::run(a)), 1.0, 1e-10);
}

TEST(LibraryQaoa, RingMaxcutGridSearchBeatsRandomGuess) {
  // p=1 QAOA on the 2-regular ring reaches 3/4 of the edges at the optimal
  // angles; a coarse grid over (γ, β) must comfortably beat the random-guess
  // expectation of half the edges.
  const unsigned n = 6;
  const auto edges = ring_graph(n);
  const auto ham = maxcut_hamiltonian(n, edges);
  const Matrix hm = ham.to_matrix();
  double best_cut = -1.0;
  for (double gamma = 0.2; gamma < 3.2; gamma += 0.3) {
    for (double beta = 0.1; beta < 1.6; beta += 0.15) {
      const auto state = dense::run(qaoa_maxcut(n, edges, {gamma}, {beta}));
      // <C> = m/2 + <H> with our H = Σ -w/2 ZZ.
      double h_expect = 0.0;
      for (std::uint64_t i = 0; i < state.size(); ++i)
        for (std::uint64_t j = 0; j < state.size(); ++j)
          h_expect += (std::conj(state[i]) * hm(i, j) * state[j]).real();
      best_cut = std::max(
          best_cut, static_cast<double>(edges.size()) / 2.0 + h_expect);
    }
  }
  EXPECT_GT(best_cut, 0.6 * static_cast<double>(edges.size()));
  EXPECT_LE(best_cut, 0.76 * static_cast<double>(edges.size()));
}

TEST(LibraryQaoa, ParameterCountValidation) {
  EXPECT_THROW(qaoa_maxcut(3, ring_graph(3), {0.1, 0.2}, {0.1}), Error);
}

TEST(LibraryAnsatz, HardwareEfficientShapeAndValidation) {
  const unsigned n = 4, layers = 2;
  std::vector<double> params(2 * n * layers, 0.1);
  const Circuit c = hardware_efficient_ansatz(n, layers, params);
  // Per layer: n RY + n RZ + (n-1) CX.
  EXPECT_EQ(c.size(), static_cast<std::size_t>(layers) * (2 * n + (n - 1)));
  EXPECT_THROW(hardware_efficient_ansatz(n, layers, {0.1}), Error);
}

TEST(LibraryIsing, TrotterApproximatesExactEvolutionShortTime) {
  // For small dt and enough steps, |<ψ_trotter|ψ_exact>| ≈ 1. We verify
  // self-consistency: more steps converge (fidelity between 8-step and
  // 16-step states higher than between 1-step and 16-step).
  const unsigned n = 4;
  const double J = 1.0, h = 0.7, t = 0.5;
  const auto run_steps = [&](unsigned steps) {
    Circuit prep(n);
    for (unsigned q = 0; q < n; ++q) prep.h(q);
    prep.compose(ising_trotter(n, J, h, t / steps, steps));
    return dense::run(prep);
  };
  const auto s1 = run_steps(1);
  const auto s8 = run_steps(8);
  const auto s16 = run_steps(16);
  EXPECT_GT(dense::overlap(s8, s16), dense::overlap(s1, s16));
  EXPECT_GT(dense::overlap(s8, s16), 0.999);
}

TEST(LibraryIsing, SecondOrderTrotterBeatsFirstOrder) {
  // At equal step counts the symmetric splitting must be closer to the
  // converged evolution than the first-order one.
  const unsigned n = 4;
  const double J = 1.0, h = 0.7, t = 0.8;
  const unsigned steps = 4;
  Circuit prep(n);
  for (unsigned q = 0; q < n; ++q) prep.h(q);

  auto run_with = [&](const Circuit& trotter) {
    Circuit c = prep;
    c.compose(trotter);
    return dense::run(c);
  };
  // Reference: very fine first-order evolution.
  const auto reference = run_with(ising_trotter(n, J, h, t / 512, 512));
  const auto first = run_with(ising_trotter(n, J, h, t / steps, steps));
  const auto second = run_with(ising_trotter2(n, J, h, t / steps, steps));
  EXPECT_GT(dense::overlap(second, reference),
            dense::overlap(first, reference));
  EXPECT_GT(dense::overlap(second, reference), 0.999);
}

TEST(LibraryPhaseEstimation, RecoversExactlyRepresentablePhase) {
  // phase = 5/16 with 4 readout qubits -> deterministic readout of 5
  // (measured register in little-endian after the final swaps).
  const unsigned precision = 4;
  const double phase = 5.0 / 16.0;
  const auto s = dense::run(phase_estimation(precision, phase));
  // Target qubit (index 4) stays |1>; readout register must be |5>.
  const std::uint64_t want = 5u | (1u << precision);
  EXPECT_NEAR(std::norm(s[want]), 1.0, 1e-8);
}

TEST(LibraryGraphs, RingGraph) {
  const auto edges = ring_graph(5);
  EXPECT_EQ(edges.size(), 5u);
  EXPECT_EQ(std::get<0>(edges[4]), 4u);
  EXPECT_EQ(std::get<1>(edges[4]), 0u);
}

TEST(LibraryGraphs, RandomGraphDistinctEdges) {
  const auto edges = random_graph(8, 12, 3);
  EXPECT_EQ(edges.size(), 12u);
  std::set<std::pair<unsigned, unsigned>> seen;
  for (const auto& [a, b, w] : edges) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, 8u);
    EXPECT_LT(b, 8u);
    EXPECT_TRUE(seen.insert({a, b}).second);
  }
  EXPECT_THROW(random_graph(3, 100, 1), Error);
}

}  // namespace
}  // namespace svsim::qc
