#include "perf/power_model.hpp"

#include <gtest/gtest.h>

#include "qc/library.hpp"

namespace svsim::perf {
namespace {

using machine::ExecConfig;
using machine::MachineSpec;

TEST(PowerModel, PositiveAndAboveIdle) {
  const qc::Circuit c = qc::qft(24);
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig cfg;
  const PowerReport p = estimate_power(c, m, cfg);
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.average_watts, m.idle_watts);
  EXPECT_NEAR(p.joules, p.average_watts * p.seconds, p.joules * 1e-9);
  EXPECT_GT(p.energy_delay_product(), 0.0);
}

TEST(PowerModel, NodePowerInPlausibleA64fxRange) {
  // A64FX nodes run roughly 100-200 W under load.
  const qc::Circuit c = qc::qft(26);
  const PowerReport p = estimate_power(c, MachineSpec::a64fx(), {});
  EXPECT_GT(p.average_watts, 90.0);
  EXPECT_LT(p.average_watts, 220.0);
}

TEST(PowerModel, BoostCalibration) {
  // The authors' published boost-mode observation on CPU-bound work:
  // ~10% faster at ~15-20% more power. Use a cache-resident circuit.
  const qc::Circuit c = qc::random_quantum_volume(20, 20, 3);
  ExecConfig cfg;
  PerfOptions opts;
  opts.fusion = true;
  opts.fusion_width = 5;  // push arithmetic intensity up: compute-bound
  const PowerReport normal =
      estimate_power(c, MachineSpec::a64fx(), cfg, opts);
  const PowerReport boost =
      estimate_power(c, MachineSpec::a64fx_boost(), cfg, opts);
  const double speedup = normal.seconds / boost.seconds;
  const double power_ratio = boost.average_watts / normal.average_watts;
  EXPECT_NEAR(speedup, 1.10, 0.02);
  EXPECT_GT(power_ratio, 1.08);
  EXPECT_LT(power_ratio, 1.30);
}

TEST(PowerModel, EcoSavesEnergyOnMemoryBoundWork) {
  // Memory-bound: eco costs almost no time but cuts core power.
  const qc::Circuit c = qc::qft(27);
  const PowerReport normal = estimate_power(c, MachineSpec::a64fx(), {});
  const PowerReport eco = estimate_power(c, MachineSpec::a64fx_eco(), {});
  EXPECT_LT(eco.seconds / normal.seconds, 1.10);
  EXPECT_LT(eco.average_watts, normal.average_watts * 0.92);
  EXPECT_LT(eco.joules, normal.joules);
}

TEST(PowerModel, BoostWastesEnergyOnMemoryBoundWork) {
  // Boost on a bandwidth-bound circuit: little speedup, more power ->
  // worse energy.
  const qc::Circuit c = qc::qft(27);
  const PowerReport normal = estimate_power(c, MachineSpec::a64fx(), {});
  const PowerReport boost = estimate_power(c, MachineSpec::a64fx_boost(), {});
  EXPECT_GT(boost.joules, normal.joules * 0.98);
}

TEST(PowerModel, FewerCoresLessPower) {
  const qc::Circuit c = qc::qft(24);
  ExecConfig few;
  few.threads = 12;
  ExecConfig all;
  const PowerReport p12 =
      estimate_power(c, MachineSpec::a64fx(), few);
  const PowerReport p48 =
      estimate_power(c, MachineSpec::a64fx(), all);
  EXPECT_LT(p12.average_watts, p48.average_watts);
}

TEST(PowerModel, EmptyCircuitGivesIdle) {
  qc::Circuit c(2);
  c.barrier();
  const PowerReport p = estimate_power(c, MachineSpec::a64fx(), {});
  EXPECT_DOUBLE_EQ(p.average_watts, MachineSpec::a64fx().idle_watts);
  EXPECT_DOUBLE_EQ(p.joules, 0.0);
}

}  // namespace
}  // namespace svsim::perf
