#include "perf/kernel_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/gate.hpp"

namespace svsim::perf {
namespace {

using machine::ExecConfig;
using machine::MachineSpec;
using qc::Gate;

const MachineSpec kA64fx = MachineSpec::a64fx();
const ExecConfig kCfg;  // defaults: all threads, double, native VL

constexpr unsigned kN = 20;
constexpr double kAmps = 1024.0 * 1024.0;  // 2^20
constexpr double kAmpBytes = 16.0;

TEST(KernelModel, General1QFlopsAndBytes) {
  const KernelCost c = gate_cost(Gate::rx(10, 0.3), kN, kA64fx, kCfg);
  // 28 flops per pair, 2^19 pairs.
  EXPECT_DOUBLE_EQ(c.flops, 28.0 * kAmps / 2);
  // Read+write the whole state.
  EXPECT_DOUBLE_EQ(c.bytes, 2.0 * kAmps * kAmpBytes);
  EXPECT_EQ(c.touched_amplitudes, 1u << kN);
  // AI = 28 / 64 = 0.4375 flop/byte — the canonical SV number.
  EXPECT_NEAR(c.arithmetic_intensity(), 0.4375, 1e-12);
}

TEST(KernelModel, XGateMovesDataWithoutFlops) {
  const KernelCost c = gate_cost(Gate::x(5), kN, kA64fx, kCfg);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
  EXPECT_DOUBLE_EQ(c.bytes, 2.0 * kAmps * kAmpBytes);
}

TEST(KernelModel, DiagonalHalfSweepOnHighQubit) {
  // T on a high qubit touches half the amplitudes AND half the cache lines.
  const KernelCost c = gate_cost(Gate::t(15), kN, kA64fx, kCfg);
  EXPECT_EQ(c.touched_amplitudes, (1u << kN) / 2);
  EXPECT_DOUBLE_EQ(c.bytes, kAmps * kAmpBytes);  // 2 x half the state
}

TEST(KernelModel, DiagonalOnLowQubitStreamsWholeLines) {
  // T on qubit 0: touched entries are every other amplitude — every 256-byte
  // line is visited, so traffic equals the full sweep despite touching half.
  const KernelCost c = gate_cost(Gate::t(0), kN, kA64fx, kCfg);
  EXPECT_EQ(c.touched_amplitudes, (1u << kN) / 2);
  EXPECT_DOUBLE_EQ(c.bytes, 2.0 * kAmps * kAmpBytes);
}

TEST(KernelModel, LineGranularityThresholdAt16Amps) {
  // 256B line = 16 double amplitudes: bit 4 is the first "line-killing" bit.
  const double full = gate_cost(Gate::t(3), kN, kA64fx, kCfg).bytes;
  const double half = gate_cost(Gate::t(4), kN, kA64fx, kCfg).bytes;
  EXPECT_DOUBLE_EQ(full, 2.0 * kAmps * kAmpBytes);
  EXPECT_DOUBLE_EQ(half, kAmps * kAmpBytes);
}

TEST(KernelModel, CxTrafficDependsOnControlPosition) {
  // Control high (bit 19): half the lines. Control low (bit 0): all lines.
  const double high = gate_cost(Gate::cx(19, 5), kN, kA64fx, kCfg).bytes;
  const double low = gate_cost(Gate::cx(0, 5), kN, kA64fx, kCfg).bytes;
  EXPECT_DOUBLE_EQ(high, kAmps * kAmpBytes);
  EXPECT_DOUBLE_EQ(low, 2.0 * kAmps * kAmpBytes);
  // Same amplitudes touched either way.
  EXPECT_EQ(gate_cost(Gate::cx(19, 5), kN, kA64fx, kCfg).touched_amplitudes,
            gate_cost(Gate::cx(0, 5), kN, kA64fx, kCfg).touched_amplitudes);
}

TEST(KernelModel, CcxQuartersLinesWithTwoHighControls) {
  const KernelCost c = gate_cost(Gate::ccx(18, 19, 5), kN, kA64fx, kCfg);
  EXPECT_DOUBLE_EQ(c.bytes, 0.5 * kAmps * kAmpBytes);
  EXPECT_EQ(c.touched_amplitudes, (1u << kN) / 4);
}

TEST(KernelModel, McPhaseTouchesExponentiallyFewAmps) {
  const KernelCost c =
      gate_cost(Gate::mcp({16, 17, 18}, 19, 0.4), kN, kA64fx, kCfg);
  EXPECT_EQ(c.touched_amplitudes, (1u << kN) / 16);
  EXPECT_DOUBLE_EQ(c.bytes, 2.0 * kAmps * kAmpBytes / 16.0);
}

TEST(KernelModel, FusionRaisesArithmeticIntensity) {
  Xoshiro256 rng(1);
  const double ai1 =
      gate_cost(Gate::rx(8, 0.1), kN, kA64fx, kCfg).arithmetic_intensity();
  const double ai3 =
      gate_cost(Gate::unitary({3, 7, 11},
                              qc::Matrix::random_unitary(8, rng)),
                kN, kA64fx, kCfg)
          .arithmetic_intensity();
  const double ai5 =
      gate_cost(Gate::unitary({3, 7, 11, 13, 17},
                              qc::Matrix::random_unitary(32, rng)),
                kN, kA64fx, kCfg)
          .arithmetic_intensity();
  EXPECT_GT(ai3, 2.0 * ai1);
  EXPECT_GT(ai5, 2.0 * ai3);
}

TEST(KernelModel, SimdEfficiencyPenalizesLowTargets) {
  // 512-bit vectors over complex<double>: 4 pairs per vector; targets 0 and
  // 1 pay permute penalties, target >= 2 runs at full efficiency.
  const double e0 = simd_efficiency_for_target(0, 512, 8);
  const double e1 = simd_efficiency_for_target(1, 512, 8);
  const double e2 = simd_efficiency_for_target(2, 512, 8);
  const double e9 = simd_efficiency_for_target(9, 512, 8);
  EXPECT_LT(e0, e1);
  EXPECT_LT(e1, e2);
  EXPECT_DOUBLE_EQ(e2, e9);
  EXPECT_DOUBLE_EQ(e2, 0.95);
}

TEST(KernelModel, ShorterVectorsMoveThePenaltyBoundary) {
  // 128-bit vectors hold one complex<double>: no penalty anywhere.
  EXPECT_DOUBLE_EQ(simd_efficiency_for_target(0, 128, 8), 0.95);
  // Single precision halves the element, doubling lanes: penalty extends one
  // qubit higher than double precision at the same width.
  EXPECT_LT(simd_efficiency_for_target(2, 512, 4),
            simd_efficiency_for_target(2, 512, 8));
}

TEST(KernelModel, PrecisionHalvesTraffic) {
  ExecConfig sp = kCfg;
  sp.element_bytes = 4;
  const double dp_bytes = gate_cost(Gate::h(10), kN, kA64fx, kCfg).bytes;
  const double sp_bytes = gate_cost(Gate::h(10), kN, kA64fx, sp).bytes;
  EXPECT_DOUBLE_EQ(sp_bytes, dp_bytes / 2.0);
}

TEST(KernelModel, SwapTouchesHalfTheState) {
  const KernelCost c = gate_cost(Gate::swap(17, 19), kN, kA64fx, kCfg);
  EXPECT_EQ(c.touched_amplitudes, (1u << kN) / 2);
  EXPECT_DOUBLE_EQ(c.flops, 0.0);
  // Both operand bits high: half of all lines (2 subsets x quarter each).
  EXPECT_DOUBLE_EQ(c.bytes, kAmps * kAmpBytes);
}

TEST(KernelModel, SwapOnLowQubitsCapsAtFullSweep) {
  const KernelCost c = gate_cost(Gate::swap(0, 1), kN, kA64fx, kCfg);
  EXPECT_DOUBLE_EQ(c.bytes, 2.0 * kAmps * kAmpBytes);
}

TEST(KernelModel, NopGatesAreFree) {
  EXPECT_DOUBLE_EQ(gate_cost(Gate::i(3), kN, kA64fx, kCfg).bytes, 0.0);
  EXPECT_DOUBLE_EQ(gate_cost(Gate::barrier(), kN, kA64fx, kCfg).flops, 0.0);
}

TEST(KernelModel, MeasureCostsSweeps) {
  const KernelCost c = gate_cost(Gate::measure(3, 0), kN, kA64fx, kCfg);
  EXPECT_GT(c.bytes, kAmps * kAmpBytes);
  EXPECT_GT(c.flops, 0.0);
}

TEST(BlockedSweepCost, BytesPerGateFallAsOneOverK) {
  // k Hadamards on low targets: unblocked each streams the state; blocked
  // the whole sweep costs one read+write traversal.
  for (std::size_t k : {1u, 4u, 16u}) {
    std::vector<Gate> gates;
    for (std::size_t i = 0; i < k; ++i)
      gates.push_back(Gate::h(static_cast<unsigned>(i % 8)));
    const SweepCost c = blocked_sweep_cost(gates, kN, 14, kA64fx, kCfg);
    EXPECT_EQ(c.gates, k);
    EXPECT_DOUBLE_EQ(c.dram_bytes, 2.0 * kAmps * kAmpBytes);
    EXPECT_DOUBLE_EQ(c.bytes_per_gate(),
                     2.0 * kAmps * kAmpBytes / static_cast<double>(k));
    EXPECT_DOUBLE_EQ(c.unblocked_bytes,
                     static_cast<double>(k) * 2.0 * kAmps * kAmpBytes);
    EXPECT_NEAR(c.traffic_ratio(), 1.0 / static_cast<double>(k), 1e-12);
  }
}

TEST(BlockedSweepCost, FlopsMatchPerGateSum) {
  const std::vector<Gate> gates = {Gate::rx(0, 0.3), Gate::h(1),
                                   Gate::cz(2, 3)};
  const SweepCost c = blocked_sweep_cost(gates, kN, 10, kA64fx, kCfg);
  double flops = 0.0;
  for (const auto& g : gates) flops += gate_cost(g, kN, kA64fx, kCfg).flops;
  EXPECT_DOUBLE_EQ(c.flops, flops);
  // Blocking multiplies arithmetic intensity by the sweep's traffic win.
  EXPECT_GT(c.arithmetic_intensity(),
            gate_cost(gates[0], kN, kA64fx, kCfg).arithmetic_intensity());
  EXPECT_EQ(c.block_bytes, std::uint64_t{1} << 10 << 4);  // 2^10 amps * 16 B
}

TEST(BlockedSweepCost, RejectsBoundaryCrossingOperands) {
  const std::vector<Gate> gates = {Gate::h(10)};
  EXPECT_THROW(blocked_sweep_cost(gates, kN, 10, kA64fx, kCfg),
               svsim::Error);
  EXPECT_THROW(blocked_sweep_cost({}, kN, 0, kA64fx, kCfg), svsim::Error);
}

TEST(KernelModel, SmallerLineMachineLosesLessOnLowControls) {
  // Xeon has 64-byte lines (4 double amps): control at bit 2 already kills
  // lines there, while A64FX (16 amps/line) still streams everything.
  const MachineSpec xeon = MachineSpec::xeon_6148_dual();
  ExecConfig cfg;
  cfg.threads = 40;
  const double xeon_bytes = gate_cost(Gate::cx(2, 10), kN, xeon, cfg).bytes;
  ExecConfig cfg48;
  const double a64_bytes = gate_cost(Gate::cx(2, 10), kN, kA64fx, cfg48).bytes;
  EXPECT_LT(xeon_bytes, a64_bytes);
}

}  // namespace
}  // namespace svsim::perf
