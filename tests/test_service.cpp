// Service-layer tests: JSON protocol parsing, plan-cache keying/eviction,
// batched-shot execution equivalence, admission control, and the serve
// session loop (docs/SERVICE.md).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machine/machine_spec.hpp"
#include "obs/metrics.hpp"
#include "qc/circuit.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/plan.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"
#include "svc/job_queue.hpp"
#include "svc/json.hpp"
#include "svc/plan_cache.hpp"
#include "svc/service.hpp"

using namespace svsim;

namespace {

std::string bit_label(std::uint64_t key, unsigned width) {
  std::string label;
  for (unsigned b = width; b-- > 0;) label += ((key >> b) & 1) ? '1' : '0';
  return label;
}

std::map<std::string, std::size_t> label_counts(
    const std::map<std::uint64_t, std::size_t>& counts, unsigned width) {
  std::map<std::string, std::size_t> out;
  for (const auto& [k, c] : counts) out[bit_label(k, width)] = c;
  return out;
}

}  // namespace

// ---- JSON reader --------------------------------------------------------

TEST(ServiceJson, ParsesNestedDocument) {
  const auto v = svc::json::parse(
      R"({"id":"a","shots":12,"flag":true,"arr":[1,2.5,-3e2],"obj":{"x":null}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("id", ""), "a");
  EXPECT_EQ(v.get_number("shots", 0), 12.0);
  EXPECT_TRUE(v.get_bool("flag", false));
  const svc::json::Value* arr = v.find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[2].number, -300.0);
  EXPECT_TRUE(v.at("obj", "t").at("x", "t").is_null());
}

TEST(ServiceJson, StringEscapes) {
  const auto v = svc::json::parse(R"({"s":"a\"b\\c\n\tA"})");
  EXPECT_EQ(v.get_string("s", ""), "a\"b\\c\n\tA");
  EXPECT_EQ(svc::json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ServiceJson, RejectsMalformedInput) {
  EXPECT_THROW(svc::json::parse("{\"a\":1"), Error);
  EXPECT_THROW(svc::json::parse("{} trailing"), Error);
  EXPECT_THROW(svc::json::parse("{\"a\":tru}"), Error);
  EXPECT_THROW(svc::json::parse("[1,]"), Error);
}

// ---- Fingerprints and cache keys ---------------------------------------

TEST(ServiceFingerprint, CircuitStructureSensitive) {
  qc::Circuit a = qc::qft(5);
  qc::Circuit b = qc::qft(5);
  EXPECT_EQ(svc::fingerprint_circuit(a), svc::fingerprint_circuit(b));
  b.rz(0, 0.125);
  EXPECT_NE(svc::fingerprint_circuit(a), svc::fingerprint_circuit(b));

  qc::Circuit c(2);
  c.rz(0, 0.5);
  qc::Circuit d(2);
  d.rz(0, 0.5000001);  // parameter bit pattern matters
  EXPECT_NE(svc::fingerprint_circuit(c), svc::fingerprint_circuit(d));
}

TEST(ServiceFingerprint, MachineAndOptionsSensitive) {
  const auto a64fx = machine::MachineSpec::a64fx();
  const auto xeon = machine::MachineSpec::xeon_6148_dual();
  EXPECT_NE(svc::fingerprint_machine(&a64fx), svc::fingerprint_machine(&xeon));
  EXPECT_NE(svc::fingerprint_machine(&a64fx), svc::fingerprint_machine(nullptr));

  sv::PlanOptions po;
  const auto base = svc::fingerprint_plan_options(po, 1, "remap", 16);
  EXPECT_EQ(base, svc::fingerprint_plan_options(po, 1, "remap", 16));
  EXPECT_NE(base, svc::fingerprint_plan_options(po, 2, "remap", 16));
  EXPECT_NE(base, svc::fingerprint_plan_options(po, 1, "naive", 16));
  sv::PlanOptions fused = po;
  fused.fusion = true;
  EXPECT_NE(base, svc::fingerprint_plan_options(fused, 1, "remap", 16));
}

// ---- PlanCache ----------------------------------------------------------

namespace {

std::shared_ptr<svc::CachedPlan> make_entry(unsigned qubits,
                                            std::uint64_t footprint) {
  auto entry = std::make_shared<svc::CachedPlan>();
  entry->plan = std::make_shared<const sv::ExecutionPlan>(
      sv::compile_plan(qc::qft(qubits), {}));
  entry->footprint_bytes = footprint;
  return entry;
}

}  // namespace

TEST(PlanCache, HitReturnsIdenticalPlan) {
  svc::PlanCache cache(1 << 20);
  svc::PlanKey key{1, 2, 3};
  auto entry = make_entry(4, 100);
  const std::string id = entry->plan->summary_id();
  ASSERT_TRUE(cache.put(key, entry));

  const auto hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->plan.get(), entry->plan.get());  // the very same object
  EXPECT_EQ(hit->plan->summary_id(), id);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.get({9, 9, 9}), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCache, EvictsLruUnderByteBudget) {
  svc::PlanCache cache(250);
  ASSERT_TRUE(cache.put({1, 0, 0}, make_entry(3, 100)));
  ASSERT_TRUE(cache.put({2, 0, 0}, make_entry(3, 100)));
  EXPECT_EQ(cache.size(), 2u);
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_NE(cache.get({1, 0, 0}), nullptr);
  ASSERT_TRUE(cache.put({3, 0, 0}, make_entry(3, 100)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.get({1, 0, 0}), nullptr);  // survivor
  EXPECT_EQ(cache.get({2, 0, 0}), nullptr);  // evicted -> miss
  EXPECT_LE(cache.bytes(), 250u);
}

TEST(PlanCache, RejectsOversizedEntryWithoutFlushing) {
  svc::PlanCache cache(250);
  ASSERT_TRUE(cache.put({1, 0, 0}, make_entry(3, 200)));
  EXPECT_FALSE(cache.put({2, 0, 0}, make_entry(3, 1000)));
  EXPECT_EQ(cache.size(), 1u);            // tenant kept
  EXPECT_NE(cache.get({1, 0, 0}), nullptr);
}

TEST(PlanCache, FootprintEstimateCoversPayloads) {
  const auto plan = sv::compile_plan(qc::qft(6), {});
  const std::uint64_t fp = svc::plan_footprint_bytes(plan);
  EXPECT_GT(fp, sizeof(sv::ExecutionPlan));
  // A wider circuit with more gates must cost more.
  EXPECT_GT(svc::plan_footprint_bytes(sv::compile_plan(qc::qft(10), {})), fp);
}

// ---- JobQueue -----------------------------------------------------------

TEST(JobQueue, DrainsAfterClose) {
  svc::JobQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  q.push(3);  // dropped: producer lost the race with shutdown
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));
}

// ---- Engine batch execution --------------------------------------------

TEST(RunPlanBatch, MatchesSequentialRunPlan) {
  const qc::Circuit circuit = qc::random_quantum_volume(6, 3, 11);
  sv::PlanOptions po;
  po.blocking = true;
  const auto plan = sv::compile_plan(circuit, po);

  std::vector<sv::StateVector<double>> batch_states;
  std::vector<sv::StateVector<double>*> ptrs;
  batch_states.reserve(3);
  for (int i = 0; i < 3; ++i) {
    batch_states.emplace_back(6);
    ptrs.push_back(&batch_states.back());
  }
  const auto batch_stats = sv::run_plan_batch(ptrs, plan);

  sv::StateVector<double> reference(6);
  const auto single_stats = sv::run_plan(reference, plan);

  for (const auto* s : ptrs)
    for (std::uint64_t i = 0; i < s->size(); ++i)
      EXPECT_EQ(s->data()[i], reference.data()[i]) << "amplitude " << i;

  // Aggregated stats are the single-run stats times the batch size.
  EXPECT_EQ(batch_stats.traversals, 3 * single_stats.traversals);
  EXPECT_EQ(batch_stats.blocked_gates, 3 * single_stats.blocked_gates);
  EXPECT_EQ(batch_stats.bytes_streamed, 3 * single_stats.bytes_streamed);
}

// ---- Service ------------------------------------------------------------

namespace {

svc::JobRequest qft_job(const std::string& id, unsigned qubits,
                        std::size_t shots, std::uint64_t seed) {
  svc::JobRequest req;
  req.id = id;
  req.circuit = qc::qft(qubits);
  req.shots = shots;
  req.seed = seed;
  return req;
}

}  // namespace

TEST(Service, SampledModeBitIdenticalToSimulator) {
  svc::Service service{svc::ServiceOptions{}};
  svc::JobRequest req = qft_job("j", 5, 500, 42);
  const svc::JobResult result = service.run_job(req);
  ASSERT_TRUE(result.ok) << result.error_message;
  EXPECT_EQ(result.mode, "sampled");
  EXPECT_EQ(result.executions, 1u);

  // The service replicates Simulator::sample_counts' fast path (one state
  // preparation + sampling with identical RNG consumption), so at a fixed
  // seed the histograms are bit-identical, not merely close.
  sv::SimulatorOptions opts;
  opts.seed = 42;
  sv::Simulator<double> sim(opts);
  qc::Circuit circuit = qc::qft(5);
  circuit.measure_all();
  const auto expected = label_counts(sim.sample_counts(circuit, 500), 5);
  EXPECT_EQ(result.counts, expected);
}

TEST(Service, CacheHitReturnsBitIdenticalPlan) {
  svc::Service service{svc::ServiceOptions{}};
  const auto first = service.run_job(qft_job("a", 6, 64, 1));
  const auto second = service.run_job(qft_job("b", 6, 64, 1));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.cache_key, second.cache_key);
  EXPECT_EQ(first.plan_summary, second.plan_summary);
  EXPECT_EQ(second.compile_seconds, 0.0);
  EXPECT_EQ(first.counts, second.counts);  // same seed -> same samples
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_EQ(service.cache().misses(), 1u);
}

TEST(Service, DifferentOptionsMissTheCache) {
  svc::Service service{svc::ServiceOptions{}};
  ASSERT_TRUE(service.run_job(qft_job("a", 6, 16, 1)).ok);
  svc::JobRequest fused = qft_job("b", 6, 16, 1);
  fused.fusion = true;
  const auto result = service.run_job(fused);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_EQ(service.cache().misses(), 2u);
}

TEST(Service, EvictionUnderSmallByteBudget) {
  svc::ServiceOptions opts;
  opts.cache_bytes = 4096;  // roughly one small plan
  svc::Service service(opts);
  ASSERT_TRUE(service.run_job(qft_job("a", 4, 8, 1)).ok);
  ASSERT_TRUE(service.run_job(qft_job("b", 5, 8, 1)).ok);
  ASSERT_TRUE(service.run_job(qft_job("c", 6, 8, 1)).ok);
  EXPECT_GT(service.cache().evictions(), 0u);
  EXPECT_LE(service.cache().bytes(), opts.cache_bytes);
  // The evicted first circuit must re-compile as a miss.
  const auto again = service.run_job(qft_job("a2", 4, 8, 1));
  ASSERT_TRUE(again.ok);
  EXPECT_FALSE(again.cache_hit);
}

TEST(Service, AdmissionRejectsOverCostJob) {
  svc::ServiceOptions opts;
  opts.max_modeled_seconds = 1e-12;  // everything is over budget
  svc::Service service(opts);
  const auto result = service.run_job(qft_job("big", 8, 32, 1));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, "admission_rejected");
  EXPECT_GT(result.modeled_seconds, result.modeled_limit_seconds);
  EXPECT_TRUE(result.counts.empty());
  EXPECT_EQ(service.jobs_rejected(), 1u);
  // The plan was still compiled and cached: resubmission attributes a hit.
  const auto retry = service.run_job(qft_job("big2", 8, 32, 1));
  EXPECT_TRUE(retry.cache_hit);
}

TEST(Service, TrajectoryBatchingMatchesPerShotStatistics) {
  // X(0) then bit-flip noise: P(outcome "0") = p. Compare the service's
  // batched trajectories against the Simulator's per-shot general path at
  // binomial tolerance (4 sigma of the two-sample difference).
  constexpr double kP = 0.1;
  constexpr std::size_t kShots = 2000;
  qc::Circuit circuit(1, 1);
  circuit.x(0);
  circuit.measure(0, 0);

  svc::JobRequest req;
  req.id = "noisy";
  req.circuit = circuit;
  req.shots = kShots;
  req.seed = 9;
  req.noise.add_bit_flip(kP, 1);
  svc::Service service{svc::ServiceOptions{}};
  const auto result = service.run_job(req);
  ASSERT_TRUE(result.ok) << result.error_message;
  EXPECT_EQ(result.mode, "trajectory");
  EXPECT_EQ(result.executions, kShots);

  sv::SimulatorOptions opts;
  opts.seed = 10;  // independent stream; statistical comparison
  opts.noise.add_bit_flip(kP, 1);
  sv::Simulator<double> sim(opts);
  const auto per_shot = label_counts(sim.sample_counts(circuit, kShots), 1);

  const auto frac = [&](const std::map<std::string, std::size_t>& counts) {
    const auto it = counts.find("0");
    return it == counts.end() ? 0.0
                              : static_cast<double>(it->second) / kShots;
  };
  const double sigma = std::sqrt(2.0 * kP * (1.0 - kP) / kShots);
  EXPECT_NEAR(frac(result.counts), kP, 4.0 * sigma);
  EXPECT_NEAR(frac(per_shot), kP, 4.0 * sigma);
  EXPECT_NEAR(frac(result.counts), frac(per_shot), 4.0 * sigma);

  std::size_t total = 0;
  for (const auto& [k, c] : result.counts) total += c;
  EXPECT_EQ(total, kShots);
}

TEST(Service, TrajectoryResultsInvariantToBatchSplit) {
  qc::Circuit circuit(2, 2);
  circuit.h(0).cx(0, 1).measure(0, 0).measure(1, 1);

  svc::JobRequest req;
  req.circuit = circuit;
  req.shots = 100;
  req.seed = 77;
  req.noise.add_depolarizing(0.05);

  svc::ServiceOptions one_batch;
  one_batch.batch_bytes = 1u << 30;  // everything in one batch
  svc::ServiceOptions tiny_batches;
  tiny_batches.batch_bytes = 1;  // one state per batch
  svc::Service a{one_batch};
  svc::Service b(tiny_batches);
  const auto ra = a.run_job(req);
  const auto rb = b.run_job(req);
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rb.ok);
  EXPECT_EQ(ra.batches, 1u);
  EXPECT_EQ(rb.batches, 100u);
  // Trajectory i is seeded by its global index, so the histogram cannot
  // depend on how the shots were grouped into batches.
  EXPECT_EQ(ra.counts, rb.counts);
}

// ---- Serve protocol -----------------------------------------------------

TEST(ServeProtocol, ParseJobLineReadsOptionsAndNoise) {
  const auto req = svc::parse_job_line(
      R"({"id":"x","qft":4,"shots":32,)"
      R"("options":{"fusion":true,"fusion_width":2,"blocked":true,)"
      R"("ranks":4,"sched":"naive","seed":5},)"
      R"("noise":{"depolarizing":0.01,"readout":[0.02,0.03]}})");
  EXPECT_EQ(req.id, "x");
  EXPECT_EQ(req.circuit.num_qubits(), 4u);
  EXPECT_EQ(req.shots, 32u);
  EXPECT_TRUE(req.fusion);
  EXPECT_EQ(req.fusion_width, 2u);
  EXPECT_TRUE(req.blocking);
  EXPECT_EQ(req.ranks, 4u);
  EXPECT_EQ(req.scheduler, "naive");
  EXPECT_EQ(req.seed, 5u);
  EXPECT_EQ(req.noise.channels().size(), 1u);
  EXPECT_TRUE(req.noise.has_readout_error());
  EXPECT_THROW(svc::parse_job_line(R"({"shots":4})"), Error);
  EXPECT_THROW(svc::parse_job_line("not json"), Error);
}

TEST(ServeProtocol, ResultJsonRoundTripsThroughTheReader) {
  svc::JobResult r;
  r.id = "we\"ird";
  r.shots = 4;
  r.counts["01"] = 3;
  r.counts["10"] = 1;
  r.mode = "sampled";
  r.executions = 1;
  r.batches = 1;
  r.batch_size = 1;
  r.cache_key = "c1.m2.o3";
  r.plan_summary = "q2r1b0p1g2";
  const auto v = svc::json::parse(svc::result_to_json(r));
  EXPECT_EQ(v.get_string("type", ""), "result");
  EXPECT_EQ(v.get_string("id", ""), "we\"ird");
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.at("counts", "t").get_number("01", 0), 3.0);
  EXPECT_EQ(v.at("cache", "t").get_bool("hit", true), false);
}

TEST(ServeProtocol, SessionEmitsResultsAndSummary) {
  std::istringstream in(
      "{\"id\":\"a\",\"qft\":4,\"shots\":16,\"options\":{\"seed\":3}}\n"
      "\n"
      "{\"id\":\"b\",\"qft\":4,\"shots\":16,\"options\":{\"seed\":3}}\n"
      "this is not json\n");
  std::ostringstream out;
  svc::Service service{svc::ServiceOptions{}};
  const svc::ServeStats stats = svc::serve_session(in, out, service);
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.shots, 32u);

  std::vector<svc::json::Value> lines;
  std::istringstream reread(out.str());
  std::string line;
  while (std::getline(reread, line)) lines.push_back(svc::json::parse(line));
  ASSERT_EQ(lines.size(), 4u);  // 3 results + summary

  EXPECT_EQ(lines[0].get_string("id", ""), "a");
  EXPECT_FALSE(lines[0].at("cache", "t").get_bool("hit", true));
  EXPECT_EQ(lines[1].get_string("id", ""), "b");
  EXPECT_TRUE(lines[1].at("cache", "t").get_bool("hit", false));
  // Identical job + seed: the second submission reuses the plan AND
  // reproduces the histogram.
  EXPECT_EQ(lines[0].find("counts")->object.size(),
            lines[1].find("counts")->object.size());
  EXPECT_FALSE(lines[2].get_bool("ok", true));
  EXPECT_EQ(lines[2].at("error", "t").get_string("code", ""), "bad_request");

  const auto& summary = lines[3];
  EXPECT_EQ(summary.get_string("type", ""), "summary");
  EXPECT_EQ(summary.get_number("jobs", 0), 3.0);
  EXPECT_EQ(summary.get_number("errors", 0), 1.0);
  EXPECT_EQ(summary.at("plan_cache", "t").get_number("hits", 0), 1.0);
  EXPECT_EQ(summary.at("plan_cache", "t").get_number("misses", 0), 1.0);
}

TEST(ServeProtocol, BadRequestEchoesSubmittedId) {
  // A line that is valid JSON but fails job parsing (register-wide QASM
  // measure is unsupported) must still echo the submitted id; a line that
  // is not JSON at all falls back to job-<seq>.
  std::istringstream in(
      "{\"id\":\"my-job\",\"qasm\":\"not qasm at all\",\"shots\":4}\n"
      "not json\n");
  std::ostringstream out;
  svc::Service service{svc::ServiceOptions{}};
  svc::serve_session(in, out, service);

  std::istringstream reread(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(reread, line));
  const svc::json::Value first = svc::json::parse(line);
  EXPECT_FALSE(first.get_bool("ok", true));
  EXPECT_EQ(first.at("error", "t").get_string("code", ""), "bad_request");
  EXPECT_EQ(first.get_string("id", ""), "my-job");
  ASSERT_TRUE(std::getline(reread, line));
  const svc::json::Value second = svc::json::parse(line);
  EXPECT_FALSE(second.get_bool("ok", true));
  EXPECT_EQ(second.get_string("id", ""), "job-2");
}

TEST(ServeProtocol, MetricsCountersPublish) {
  obs::MetricsRegistry::global().reset();
  svc::Service service{svc::ServiceOptions{}};
  ASSERT_TRUE(service.run_job(qft_job("a", 4, 8, 1)).ok);
  ASSERT_TRUE(service.run_job(qft_job("b", 4, 8, 1)).ok);
  auto& r = obs::MetricsRegistry::global();
  EXPECT_EQ(r.counter("svc.jobs").value(), 2u);
  EXPECT_EQ(r.counter("svc.plan_cache.hits").value(), 1u);
  EXPECT_EQ(r.counter("svc.plan_cache.misses").value(), 1u);
  EXPECT_EQ(r.counter("svc.shots").value(), 16u);
  EXPECT_GT(r.gauge("svc.plan_cache.bytes").value(), 0.0);
}

// ---- Concurrency: cache hammering, context metrics, multi-worker serve --

TEST(PlanCache, ConcurrentHammerKeepsByteAccounting) {
  // 8 threads mix hits, misses, inserts, and evictions over a key space
  // whose total footprint (12 x 100 bytes) exceeds the 450-byte budget, so
  // the LRU churns constantly. Every counter must balance afterwards: the
  // cache is the one structure all serve workers share.
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 200;
  constexpr unsigned kKeySpace = 12;
  constexpr std::uint64_t kFootprint = 100;
  svc::PlanCache cache(450);

  std::vector<std::shared_ptr<svc::CachedPlan>> entries;
  for (unsigned k = 0; k < kKeySpace; ++k)
    entries.push_back(make_entry(3, kFootprint));

  std::atomic<std::uint64_t> gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = t + 1;  // xorshift: deterministic per-thread stream
      for (unsigned i = 0; i < kIters; ++i) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        const auto k = static_cast<unsigned>(x % kKeySpace);
        const svc::PlanKey key{k + 1, 7, 9};
        gets.fetch_add(1, std::memory_order_relaxed);
        if (cache.get(key) == nullptr) cache.put(key, entries[k]);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(cache.hits() + cache.misses(), gets.load());
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.bytes(), 450u);
  // No lost or phantom bytes: residency accounting matches the entry count.
  EXPECT_EQ(cache.bytes(), cache.size() * kFootprint);
  // Every indexed entry is still retrievable (no dangling LRU iterators).
  const std::size_t resident = cache.size();
  std::size_t found = 0;
  for (unsigned k = 0; k < kKeySpace; ++k)
    if (cache.get({k + 1, 7, 9}) != nullptr) ++found;
  EXPECT_EQ(found, resident);
}

TEST(PlanCache, MetricsFollowSubstitutedRegistry) {
  // Warm the global-registry path first: a static handle struct would pin
  // the process registry's counters here and leak the later increments.
  svc::PlanCache warm(1000);
  warm.get({5, 5, 5});
  auto& global = obs::MetricsRegistry::global();
  const std::uint64_t frozen = global.counter("svc.plan_cache.misses").value();

  obs::MetricsRegistry mine;
  svc::PlanCache cache(1000, &mine);
  EXPECT_EQ(cache.get({1, 2, 3}), nullptr);
  ASSERT_TRUE(cache.put({1, 2, 3}, make_entry(3, 100)));
  EXPECT_NE(cache.get({1, 2, 3}), nullptr);
  EXPECT_EQ(mine.counter("svc.plan_cache.misses").value(), 1u);
  EXPECT_EQ(mine.counter("svc.plan_cache.hits").value(), 1u);
  EXPECT_EQ(mine.gauge("svc.plan_cache.bytes").value(), 100.0);
  EXPECT_EQ(global.counter("svc.plan_cache.misses").value(), frozen);
}

TEST(Service, RunJobMetricsFollowContext) {
  svc::Service service{svc::ServiceOptions{}};
  ASSERT_TRUE(service.run_job(qft_job("warm", 4, 8, 1)).ok);  // global path
  auto& global = obs::MetricsRegistry::global();
  const std::uint64_t frozen = global.counter("svc.jobs").value();

  obs::MetricsRegistry mine;
  ExecutionContext ctx;
  ctx.with_metrics(mine);
  const auto result = service.run_job(qft_job("ctx", 5, 8, 1), ctx);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(mine.counter("svc.jobs").value(), 1u);
  EXPECT_EQ(mine.counter("svc.shots").value(), 8u);
  // The compile path (cache miss) threads the same registry.
  EXPECT_EQ(mine.counter("plan.compiles").value(), 1u);
  EXPECT_EQ(mine.counter("perf.plan_cost_evals").value(), 1u);
  EXPECT_EQ(global.counter("svc.jobs").value(), frozen);
  EXPECT_EQ(service.jobs_run(), 2u);  // instance counters see both jobs
}

namespace {

/// The serve job mix the worker-equivalence test runs: sampled f64 (with a
/// repeated plan), sampled f32, trajectory noise jobs, a fused QV circuit,
/// and one bad_request line.
const char* worker_job_mix() {
  return
      "{\"id\":\"s1\",\"qft\":5,\"shots\":64,\"options\":{\"seed\":7}}\n"
      "{\"id\":\"s2\",\"qft\":5,\"shots\":64,\"options\":{\"seed\":7}}\n"
      "{\"id\":\"f1\",\"qft\":4,\"shots\":32,"
      "\"options\":{\"seed\":3,\"precision\":\"f32\"}}\n"
      "{\"id\":\"t1\",\"qft\":4,\"shots\":16,\"options\":{\"seed\":5},"
      "\"noise\":{\"bit_flip\":0.05}}\n"
      "{\"id\":\"s3\",\"qv\":[4,2,9],\"shots\":48,"
      "\"options\":{\"seed\":11,\"fusion\":true}}\n"
      "{\"id\":\"t2\",\"qft\":5,\"shots\":8,\"options\":{\"seed\":2},"
      "\"noise\":{\"depolarizing\":0.02}}\n"
      "{\"id\":\"bad\",\"qasm\":\"nope\",\"shots\":4}\n";
}

/// Canonical per-job payload keyed by id, excluding the fields that may
/// legitimately differ across worker counts: timing, and the cache-hit
/// flag (two concurrent submissions of one plan may both miss). The cache
/// KEY and plan summary are deterministic and stay in.
std::map<std::string, std::string> payload_by_id(const std::string& session) {
  std::map<std::string, std::string> payloads;
  std::istringstream is(session);
  std::string line;
  while (std::getline(is, line)) {
    const svc::json::Value v = svc::json::parse(line);
    if (v.get_string("type", "") != "result") continue;
    std::ostringstream os;
    os << "ok=" << v.get_bool("ok", false)
       << " shots=" << v.get_number("shots", -1)
       << " mode=" << v.get_string("mode", "")
       << " precision=" << v.get_string("precision", "")
       << " executions=" << v.get_number("executions", -1)
       << " batches=" << v.get_number("batches", -1)
       << " batch_size=" << v.get_number("batch_size", -1);
    if (const svc::json::Value* c = v.find("counts")) {
      os << " counts=";
      for (const auto& [bits, n] : c->object)
        os << bits << ":" << n.number << ",";
    }
    if (const svc::json::Value* c = v.find("cache"))
      os << " key=" << c->get_string("key", "")
         << " plan=" << c->get_string("plan", "");
    if (const svc::json::Value* e = v.find("error"))
      os << " error=" << e->get_string("code", "");
    const auto [it, inserted] =
        payloads.emplace(v.get_string("id", ""), os.str());
    EXPECT_TRUE(inserted) << "duplicate result id " << it->first;
  }
  return payloads;
}

}  // namespace

TEST(ServeProtocol, MultiWorkerResultSetMatchesSingleWorker) {
  svc::ServiceOptions base;
  base.workers = 1;
  svc::Service single(base);
  std::istringstream in1(worker_job_mix());
  std::ostringstream out1;
  const svc::ServeStats stats1 = svc::serve_session(in1, out1, single);

  base.workers = 4;
  svc::Service quad(base);
  std::istringstream in4(worker_job_mix());
  std::ostringstream out4;
  const svc::ServeStats stats4 = svc::serve_session(in4, out4, quad);

  EXPECT_EQ(stats1.workers, 1u);
  EXPECT_EQ(stats4.workers, 4u);
  ASSERT_EQ(stats4.worker_jobs.size(), 4u);
  std::uint64_t across_workers = 0;
  for (const std::uint64_t j : stats4.worker_jobs) across_workers += j;
  EXPECT_EQ(across_workers, stats4.jobs);

  EXPECT_EQ(stats1.jobs, stats4.jobs);
  EXPECT_EQ(stats1.ok, stats4.ok);
  EXPECT_EQ(stats1.errors, stats4.errors);
  EXPECT_EQ(stats1.shots, stats4.shots);

  // The result SET is bit-identical: same ids, and for each id the same
  // counts histogram, mode, precision, plan attribution, and batching.
  const auto p1 = payload_by_id(out1.str());
  const auto p4 = payload_by_id(out4.str());
  ASSERT_EQ(p1.size(), 7u);
  EXPECT_EQ(p1, p4);
}

TEST(ServeProtocol, SummaryReportsWorkerBlock) {
  svc::ServiceOptions opts;
  opts.workers = 3;
  svc::Service service(opts);
  std::istringstream in(
      "{\"id\":\"a\",\"qft\":4,\"shots\":8,\"options\":{\"seed\":1}}\n"
      "{\"id\":\"b\",\"qft\":4,\"shots\":8,\"options\":{\"seed\":1}}\n");
  std::ostringstream out;
  svc::serve_session(in, out, service);

  std::istringstream reread(out.str());
  std::string line, last;
  while (std::getline(reread, line)) last = line;
  const svc::json::Value summary = svc::json::parse(last);
  ASSERT_EQ(summary.get_string("type", ""), "summary");
  const svc::json::Value& svc_block = summary.at("svc", "summary.svc");
  EXPECT_EQ(svc_block.get_number("workers", 0), 3.0);
  const svc::json::Value* jobs = svc_block.find("worker_jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_TRUE(jobs->is_array());
  ASSERT_EQ(jobs->array.size(), 3u);
  double total = 0;
  for (const auto& j : jobs->array) total += j.number;
  EXPECT_EQ(total, summary.get_number("jobs", -1));
}
