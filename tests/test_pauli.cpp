#include "qc/pauli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qc/gate.hpp"

namespace svsim::qc {
namespace {

TEST(PauliString, LabelRoundTrip) {
  for (const std::string label : {"I", "X", "Y", "Z", "XZ", "IXYZ", "ZZXXYY"}) {
    EXPECT_EQ(PauliString::from_label(label).to_label(), label);
  }
}

TEST(PauliString, LabelOrderIsQiskitStyle) {
  // "XZ": X on qubit 1, Z on qubit 0.
  const PauliString p = PauliString::from_label("XZ");
  EXPECT_EQ(p.pauli_at(0), 'Z');
  EXPECT_EQ(p.pauli_at(1), 'X');
}

TEST(PauliString, BadLabelsThrow) {
  EXPECT_THROW(PauliString::from_label(""), Error);
  EXPECT_THROW(PauliString::from_label("XQ"), Error);
}

TEST(PauliString, Weight) {
  EXPECT_EQ(PauliString::from_label("III").weight(), 0u);
  EXPECT_EQ(PauliString::from_label("XYZ").weight(), 3u);
  EXPECT_EQ(PauliString::from_label("IXI").weight(), 1u);
  EXPECT_TRUE(PauliString(4).is_identity());
}

TEST(PauliString, SingleFactory) {
  const PauliString y = PauliString::single(3, 1, 'Y');
  EXPECT_EQ(y.to_label(), "IYI");
  EXPECT_THROW(PauliString::single(3, 5, 'X'), Error);
  EXPECT_THROW(PauliString::single(3, 0, 'Q'), Error);
}

TEST(PauliString, Commutation) {
  const auto X = PauliString::from_label("X");
  const auto Y = PauliString::from_label("Y");
  const auto Z = PauliString::from_label("Z");
  EXPECT_FALSE(X.commutes_with(Y));
  EXPECT_FALSE(Y.commutes_with(Z));
  EXPECT_FALSE(X.commutes_with(Z));
  EXPECT_TRUE(X.commutes_with(X));
  // XX and ZZ commute (two anticommuting factors).
  EXPECT_TRUE(PauliString::from_label("XX").commutes_with(
      PauliString::from_label("ZZ")));
  // XI and ZZ anticommute (one anticommuting factor).
  EXPECT_FALSE(PauliString::from_label("XI").commutes_with(
      PauliString::from_label("ZZ")));
}

TEST(PauliString, ProductPhases) {
  const auto X = PauliString::from_label("X");
  const auto Y = PauliString::from_label("Y");
  const auto Z = PauliString::from_label("Z");
  // XY = iZ
  auto [phase, result] = X.multiply(Y);
  EXPECT_EQ(result.to_label(), "Z");
  EXPECT_NEAR(std::abs(phase - std::complex<double>{0, 1}), 0.0, 1e-15);
  // YX = -iZ
  auto [phase2, result2] = Y.multiply(X);
  EXPECT_EQ(result2.to_label(), "Z");
  EXPECT_NEAR(std::abs(phase2 - std::complex<double>{0, -1}), 0.0, 1e-15);
  // ZZ = I
  auto [phase3, result3] = Z.multiply(Z);
  EXPECT_TRUE(result3.is_identity());
  EXPECT_NEAR(std::abs(phase3 - 1.0), 0.0, 1e-15);
}

TEST(PauliString, ProductMatchesMatrixProduct) {
  const std::vector<std::string> labels = {"XY", "ZI", "YY", "XZ", "IY"};
  for (const auto& la : labels) {
    for (const auto& lb : labels) {
      const auto a = PauliString::from_label(la);
      const auto b = PauliString::from_label(lb);
      auto [phase, ab] = a.multiply(b);
      const Matrix expect = a.to_matrix() * b.to_matrix();
      const Matrix got = ab.to_matrix() * cplx{phase.real(), phase.imag()};
      EXPECT_LT(got.distance(expect), 1e-12) << la << " * " << lb;
    }
  }
}

TEST(PauliString, MatrixMatchesKroneckerConstruction) {
  // "XZ" = X ⊗ Z in the (qubit1 ⊗ qubit0) convention.
  const Matrix m = PauliString::from_label("XZ").to_matrix();
  const Matrix expect = mat::X().kron(mat::Z());
  EXPECT_LT(m.distance(expect), 1e-14);
}

TEST(PauliString, ApplyToBasisMatchesMatrixColumn) {
  const auto p = PauliString::from_label("YXZ");
  const Matrix m = p.to_matrix();
  for (std::uint64_t col = 0; col < 8; ++col) {
    const auto [row, phase] = p.apply_to_basis(col);
    for (std::uint64_t r = 0; r < 8; ++r) {
      const std::complex<double> expect = (r == row) ? phase : 0.0;
      EXPECT_NEAR(std::abs(m(r, col) - cplx{expect.real(), expect.imag()}),
                  0.0, 1e-14);
    }
  }
}

TEST(PauliString, PauliMatricesAreHermitianAndUnitary) {
  for (const std::string label : {"X", "Y", "Z", "XY", "YZX"}) {
    const Matrix m = PauliString::from_label(label).to_matrix();
    EXPECT_TRUE(m.is_unitary(1e-12)) << label;
    EXPECT_LT(m.distance(m.dagger()), 1e-14) << label << " hermitian";
  }
}

TEST(PauliOperator, AddMergesEqualStrings) {
  PauliOperator op(2);
  op.add(0.5, "XZ").add(0.25, "XZ").add(1.0, "ZI");
  EXPECT_EQ(op.size(), 2u);
  EXPECT_DOUBLE_EQ(op.terms()[0].coefficient, 0.75);
}

TEST(PauliOperator, ArithmeticAndToMatrix) {
  PauliOperator a(1);
  a.add(2.0, "Z");
  PauliOperator b(1);
  b.add(1.0, "X");
  const PauliOperator c = a + b * 3.0;
  const Matrix m = c.to_matrix();
  // 2Z + 3X = [[2, 3], [3, -2]]
  EXPECT_NEAR(m(0, 0).real(), 2.0, 1e-14);
  EXPECT_NEAR(m(0, 1).real(), 3.0, 1e-14);
  EXPECT_NEAR(m(1, 1).real(), -2.0, 1e-14);
}

TEST(PauliOperator, MaxcutHamiltonian) {
  // Triangle graph.
  const auto h = maxcut_hamiltonian(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
  EXPECT_EQ(h.size(), 3u);
  for (const auto& t : h.terms()) {
    EXPECT_DOUBLE_EQ(t.coefficient, -0.5);
    EXPECT_EQ(t.pauli.weight(), 2u);
  }
}

TEST(PauliOperator, TfimStructure) {
  const auto h = tfim_hamiltonian(4, 1.0, 0.5);
  // 3 ZZ bonds + 4 X fields.
  EXPECT_EQ(h.size(), 7u);
  unsigned zz = 0, x = 0;
  for (const auto& t : h.terms()) {
    if (t.pauli.weight() == 2) {
      ++zz;
      EXPECT_DOUBLE_EQ(t.coefficient, -1.0);
    } else {
      ++x;
      EXPECT_DOUBLE_EQ(t.coefficient, -0.5);
    }
  }
  EXPECT_EQ(zz, 3u);
  EXPECT_EQ(x, 4u);
}

TEST(PauliOperator, HeisenbergStructure) {
  const auto h = heisenberg_hamiltonian(3, 1.0, 2.0, 3.0);
  EXPECT_EQ(h.size(), 6u);  // 2 bonds x 3 couplings
  const Matrix m = h.to_matrix();
  EXPECT_LT(m.distance(m.dagger()), 1e-12);  // Hermitian
}

TEST(PauliOperator, ToStringMentionsTerms) {
  PauliOperator op(2);
  op.add(0.5, "XZ");
  EXPECT_NE(op.to_string().find("XZ"), std::string::npos);
}

}  // namespace
}  // namespace svsim::qc
