#include "dist/dist_sim.hpp"

#include <gtest/gtest.h>

#include "qc/library.hpp"

namespace svsim::dist {
namespace {

using machine::ExecConfig;
using machine::MachineSpec;

const MachineSpec kA64fx = MachineSpec::a64fx();
const InterconnectSpec kTofu = InterconnectSpec::tofu_d();

TEST(Interconnect, ExchangeTimeIsLatencyPlusTransfer) {
  const InterconnectSpec t = InterconnectSpec::tofu_d();
  const double small = t.pairwise_exchange_seconds(0.0);
  EXPECT_NEAR(small, t.latency_seconds + t.software_overhead_seconds, 1e-12);
  // 1 GiB over 4 x 6.8 GB/s ≈ 39 ms.
  const double big = t.pairwise_exchange_seconds(1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(big, 1073741824.0 / (4 * 6.8e9), big * 0.01);
}

TEST(Interconnect, EdrSlowerThanTofuForLargeMessages) {
  const double bytes = 1e9;
  EXPECT_GT(InterconnectSpec::infiniband_edr().pairwise_exchange_seconds(bytes),
            InterconnectSpec::tofu_d().pairwise_exchange_seconds(bytes));
}

TEST(DistSim, LocalOnlyCircuitHasNoCommTime) {
  qc::Circuit c(20);
  c.h(0).cx(1, 2).rz(3, 0.4);
  const DistPlan plan = plan_distribution(c, 4, CommScheduler::Naive);
  const DistTiming t = time_plan(plan, kA64fx, {}, kTofu);
  EXPECT_DOUBLE_EQ(t.comm_seconds, 0.0);
  EXPECT_GT(t.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.total_seconds, t.compute_seconds);
}

TEST(DistSim, CommDominatesForNodeHeavyCircuit) {
  // Hammer a node qubit: exchange of the 2^24 partition each time.
  qc::Circuit c(28);
  for (int i = 0; i < 10; ++i) c.h(27);
  const DistPlan plan = plan_distribution(c, 4, CommScheduler::Naive);
  const DistTiming t = time_plan(plan, kA64fx, {}, kTofu);
  EXPECT_GT(t.comm_seconds, t.compute_seconds);
  EXPECT_EQ(t.num_exchanges, 10u);
}

TEST(DistSim, PipelinedBoundIsMaxOfStreams) {
  const qc::Circuit c = qc::qft(24);
  const DistPlan plan = plan_distribution(c, 3, CommScheduler::Naive);
  const DistTiming t = time_plan(plan, kA64fx, {}, kTofu);
  EXPECT_DOUBLE_EQ(t.pipelined_seconds,
                   std::max(t.compute_seconds, t.comm_seconds));
  EXPECT_LE(t.pipelined_seconds, t.total_seconds);
}

TEST(DistSim, RemapReducesTotalTimeOnQft) {
  const qc::Circuit c = qc::qft(26);
  const DistPlan naive = plan_distribution(c, 4, CommScheduler::Naive);
  const DistPlan remap = plan_distribution(c, 4, CommScheduler::Remap);
  const DistTiming tn = time_plan(naive, kA64fx, {}, kTofu);
  const DistTiming tr = time_plan(remap, kA64fx, {}, kTofu);
  EXPECT_LT(tr.comm_seconds, tn.comm_seconds);
}

TEST(DistSim, EventDrivenMatchesBspWithoutStraggler) {
  const qc::Circuit c = qc::qft(16);
  const DistPlan plan = plan_distribution(c, 3, CommScheduler::Naive);
  const DistTiming bsp = time_plan(plan, kA64fx, {}, kTofu);
  const double makespan = event_driven_makespan(plan, kA64fx, {}, kTofu);
  EXPECT_NEAR(makespan, bsp.total_seconds, bsp.total_seconds * 1e-9);
}

TEST(DistSim, StragglerDelayPropagatesThroughExchanges) {
  const qc::Circuit c = qc::qft(16);
  const DistPlan plan = plan_distribution(c, 3, CommScheduler::Naive);
  ASSERT_GT(plan.num_exchanges, 0u);
  const double clean = event_driven_makespan(plan, kA64fx, {}, kTofu);
  StragglerConfig s;
  s.node = 5;
  s.slowdown = 3.0;
  const double slowed = event_driven_makespan(plan, kA64fx, {}, kTofu, s);
  EXPECT_GT(slowed, clean);
  // The whole machine ends no later than if every node were 3x slower.
  EXPECT_LT(slowed, 3.0 * clean + 1e-9);
}

TEST(DistSim, StragglerWithoutExchangesOnlyDelaysItself) {
  qc::Circuit c(16);
  c.h(0).h(1).h(2);  // purely local
  const DistPlan plan = plan_distribution(c, 3, CommScheduler::Naive);
  StragglerConfig s;
  s.node = 0;
  s.slowdown = 2.0;
  const double clean = event_driven_makespan(plan, kA64fx, {}, kTofu);
  const double slowed = event_driven_makespan(plan, kA64fx, {}, kTofu, s);
  EXPECT_NEAR(slowed, 2.0 * clean, clean * 1e-6);
}

TEST(DistSim, WeakScalingCommGrowsWithNodes) {
  // Same local size, more node qubits: per-node exchange volume constant
  // but exchange count grows with the number of node-qubit gates (QFT uses
  // every qubit), so comm share rises — the Fig. 6 shape.
  const unsigned local = 20;
  double prev_comm = -1.0;
  for (unsigned d : {1u, 3u, 5u}) {
    const qc::Circuit c = qc::qft(local + d);
    const DistPlan plan = plan_distribution(c, d, CommScheduler::Naive);
    const DistTiming t = time_plan(plan, kA64fx, {}, kTofu);
    EXPECT_GT(t.comm_seconds, prev_comm);
    prev_comm = t.comm_seconds;
  }
}

}  // namespace
}  // namespace svsim::dist
