#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace svsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 g(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndCoversAll) {
  Xoshiro256 g(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = g.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntOfOneIsZero) {
  Xoshiro256 g(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(g.uniform_int(1), 0u);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 g(99);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 root(42);
  Xoshiro256 s0 = root.split(0);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s0b = Xoshiro256(42).split(0);
  int same01 = 0;
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(s0(), s0b());
    // consume s1 too
    same01 += (s1() == 0);
  }
  (void)same01;
  // Streams 0 and 1 differ.
  Xoshiro256 t0 = root.split(0), t1 = root.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (t0() == t1());
  EXPECT_LT(equal, 2);
}

TEST(Rng, LongJumpChangesState) {
  Xoshiro256 a(5), b(5);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace svsim
