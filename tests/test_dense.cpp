#include "qc/dense.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace svsim::qc::dense {
namespace {

TEST(Dense, ZeroState) {
  const auto s = zero_state(3);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s[0], (cplx{1, 0}));
  EXPECT_NEAR(norm_squared(s), 1.0, 1e-15);
}

TEST(Dense, XFlipsBasisState) {
  auto s = zero_state(2);
  apply_gate(s, Gate::x(0), 2);
  EXPECT_NEAR(std::abs(s[1]), 1.0, 1e-15);
  apply_gate(s, Gate::x(1), 2);
  EXPECT_NEAR(std::abs(s[3]), 1.0, 1e-15);
}

TEST(Dense, HadamardMakesUniformSuperposition) {
  auto s = zero_state(1);
  apply_gate(s, Gate::h(0), 1);
  EXPECT_NEAR(s[0].real(), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(s[1].real(), 1 / std::numbers::sqrt2, 1e-12);
}

TEST(Dense, BellState) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const auto s = run(c);
  EXPECT_NEAR(std::abs(s[0]), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(s[3]), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(s[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(s[2]), 0.0, 1e-12);
}

TEST(Dense, CxControlOnUpperQubit) {
  // Prepare |10> (q1=1) then CX(1,0) must give |11>.
  Circuit c(2);
  c.x(1).cx(1, 0);
  const auto s = run(c);
  EXPECT_NEAR(std::abs(s[3]), 1.0, 1e-12);
}

TEST(Dense, GateOnHighQubitOfLargerRegister) {
  Circuit c(6);
  c.x(5);
  const auto s = run(c);
  EXPECT_NEAR(std::abs(s[32]), 1.0, 1e-12);
}

TEST(Dense, NormPreservedByRandomCircuit) {
  Xoshiro256 rng(9);
  Circuit c(5);
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<unsigned>(rng.uniform_int(5));
    auto b = static_cast<unsigned>(rng.uniform_int(4));
    if (b >= a) ++b;
    c.append(Gate::u2q(a, b, Matrix::random_unitary(4, rng)));
  }
  const auto s = run(c);
  EXPECT_NEAR(norm_squared(s), 1.0, 1e-10);
}

TEST(Dense, CircuitUnitaryMatchesGateMatrixForSingleGate) {
  Circuit c(2);
  c.cx(0, 1);
  const Matrix u = circuit_unitary(c);
  EXPECT_LT(u.distance(Gate::cx(0, 1).matrix()), 1e-12);
}

TEST(Dense, CircuitUnitaryComposes) {
  Circuit c(1);
  c.h(0).s(0);
  const Matrix u = circuit_unitary(c);
  // Circuit order h then s means matrix product S * H.
  EXPECT_LT(u.distance(mat::S() * mat::H()), 1e-12);
}

TEST(Dense, CircuitUnitaryOfUnitaryCircuitIsUnitary) {
  Xoshiro256 rng(4);
  Circuit c(3);
  c.h(0).cx(0, 1).t(2).iswap(1, 2).ccx(0, 1, 2);
  EXPECT_TRUE(circuit_unitary(c).is_unitary(1e-10));
}

TEST(Dense, RejectsMeasurement) {
  Circuit c(1);
  c.h(0).measure(0, 0);
  EXPECT_THROW(run(c), Error);
  EXPECT_THROW(circuit_unitary(c), Error);
  auto s = zero_state(1);
  EXPECT_THROW(apply_gate(s, Gate::measure(0, 0), 1), Error);
}

TEST(Dense, BarrierIsNoop) {
  auto s = zero_state(2);
  const auto before = s;
  apply_gate(s, Gate::barrier(), 2);
  EXPECT_EQ(s, before);
}

TEST(Dense, OverlapAndDistance) {
  const auto a = zero_state(2);
  auto b = zero_state(2);
  EXPECT_NEAR(overlap(a, b), 1.0, 1e-15);
  EXPECT_NEAR(distance(a, b), 0.0, 1e-15);
  apply_gate(b, Gate::x(0), 2);
  EXPECT_NEAR(overlap(a, b), 0.0, 1e-15);
  EXPECT_NEAR(distance(a, b), 1.0, 1e-15);
}

TEST(Dense, DistanceUpToPhaseIgnoresGlobalPhase) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  auto a = run(c);
  auto b = a;
  const cplx phase = std::polar(1.0, 0.9);
  for (auto& v : b) v *= phase;
  EXPECT_GT(distance(a, b), 0.1);
  EXPECT_LT(distance_up_to_phase(a, b), 1e-12);
}

TEST(Dense, MultiControlledGates) {
  // CCX flips target only when both controls are set.
  Circuit c(3);
  c.x(0).x(1).ccx(0, 1, 2);
  const auto s = run(c);
  EXPECT_NEAR(std::abs(s[7]), 1.0, 1e-12);

  Circuit c2(3);
  c2.x(0).ccx(0, 1, 2);  // only one control set
  const auto s2 = run(c2);
  EXPECT_NEAR(std::abs(s2[1]), 1.0, 1e-12);
}

TEST(Dense, MCPAppliesPhaseOnlyOnAllOnes) {
  Circuit c(3);
  for (unsigned q = 0; q < 3; ++q) c.h(q);
  c.append(Gate::mcp({0, 1}, 2, std::numbers::pi));
  const auto s = run(c);
  // Only |111> picks up the -1.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const double expect_sign = (i == 7) ? -1.0 : 1.0;
    EXPECT_NEAR(s[i].real(), expect_sign / std::sqrt(8.0), 1e-12) << i;
  }
}

}  // namespace
}  // namespace svsim::qc::dense
