// Sweep planner and blocked execution engine.
//
// The planner must be exactly equivalent to the circuit (no reordering, no
// dropped gates), and the engine must produce bit-identical kernel math to
// the per-gate path. Equivalence tests deliberately straddle the block
// boundary: targets below, at, and above block_qubits in one circuit.
#include "sv/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/plan.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;
using qc::Gate;

TEST(AutoBlockQubits, FitsCacheBudget) {
  // 512 KiB of complex<double>: 2^15 amplitudes.
  EXPECT_EQ(auto_block_qubits(24, 512u * 1024u, 16, 3), 15u);
  // Halving the amplitude size buys one more qubit.
  EXPECT_EQ(auto_block_qubits(24, 512u * 1024u, 8, 3), 16u);
  // Tiny budget still yields a valid block.
  EXPECT_EQ(auto_block_qubits(24, 1, 16, 3), 1u);
}

TEST(AutoBlockQubits, KeepsFreeQubitsForParallelism) {
  // n=10 clamps b to n - min_free = 7 despite the large budget.
  EXPECT_EQ(auto_block_qubits(10, 512u * 1024u, 16, 3), 7u);
  // Registers at or below min_free fall back to [1, n].
  EXPECT_EQ(auto_block_qubits(2, 512u * 1024u, 16, 3), 2u);
  EXPECT_EQ(auto_block_qubits(1, 512u * 1024u, 16, 3), 1u);
}

TEST(PlanSweeps, GroupsConsecutiveLowGates) {
  Circuit c(8);
  c.h(0).rz(1, 0.3).x(2);   // sweep of 3
  c.h(6);                   // pass-through (>= b)
  c.h(1).cz(0, 2);          // sweep of 2
  SweepOptions so;
  so.block_qubits = 4;
  const SweepPlan plan = plan_sweeps(c, so);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_TRUE(plan.steps[0].blocked);
  EXPECT_EQ(plan.steps[0].gates.size(), 3u);
  EXPECT_FALSE(plan.steps[1].blocked);
  EXPECT_TRUE(plan.steps[2].blocked);
  EXPECT_EQ(plan.blocked_gates, 5u);
  EXPECT_EQ(plan.passthrough_gates, 1u);
  EXPECT_EQ(plan.traversals(), 3u);
  EXPECT_NEAR(plan.gates_per_traversal(), 6.0 / 3.0, 1e-12);
}

TEST(PlanSweeps, PreservesGateOrderAndCount) {
  const Circuit c = qc::random_clifford_t(8, 120, 7);
  SweepOptions so;
  so.block_qubits = 4;
  const SweepPlan plan = plan_sweeps(c, so);
  std::vector<Gate> flattened;
  for (const auto& step : plan.steps)
    for (const auto& g : step.gates) flattened.push_back(g);
  ASSERT_EQ(flattened.size(), c.size());
  for (std::size_t i = 0; i < flattened.size(); ++i) {
    EXPECT_EQ(flattened[i].kind, c.gate(i).kind);
    EXPECT_EQ(flattened[i].qubits, c.gate(i).qubits);
  }
}

TEST(PlanSweeps, SplitsAtMaxSweepGates) {
  Circuit c(6);
  for (int i = 0; i < 10; ++i) c.h(0);
  SweepOptions so;
  so.block_qubits = 3;
  so.max_sweep_gates = 4;
  const SweepPlan plan = plan_sweeps(c, so);
  ASSERT_EQ(plan.steps.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(plan.steps[0].gates.size(), 4u);
  EXPECT_EQ(plan.steps[2].gates.size(), 2u);
  EXPECT_EQ(plan.traversals(), 3u);
}

TEST(PlanSweeps, BarriersAndMeasureArePassThrough) {
  Circuit c(6);
  c.h(0).barrier().h(1).measure(0, 0);
  SweepOptions so;
  so.block_qubits = 3;
  const SweepPlan plan = plan_sweeps(c, so);
  EXPECT_EQ(plan.blocked_gates, 2u);
  EXPECT_EQ(plan.passthrough_gates, 1u);  // barrier is free, measure is not
  EXPECT_EQ(plan.traversals(), 3u);       // two sweeps split by the barrier
}

TEST(RunSweep, MatchesPerGateKernels) {
  const unsigned n = 8, b = 4;
  Circuit c(n);
  // Mixed kernel classes, all operands < b, including the boundary bit b-1.
  c.h(0).x(3).z(1).s(2).rz(3, 0.7).cx(0, 3).cz(1, 2).swap(0, 2);
  c.ccx(0, 1, 3).cp(2, 3, 0.4).rzz(1, 3, 0.9).u(2, 0.1, 0.2, 0.3);

  StateVector<double> blocked(n), naive(n);
  apply_gate(blocked, Gate::h(n - 1));  // spread mass beyond block 0
  apply_gate(naive, Gate::h(n - 1));
  run_sweep(blocked, c.gates().data(), c.gates().size(), b);
  for (const auto& g : c.gates()) apply_gate(naive, g);

  const auto got = blocked.to_vector();
  const auto want = naive.to_vector();
  // Same kernel math, but instruction selection (FMA contraction) may
  // differ between the block and whole-state loops: allow a few ulps.
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-13);
}

TEST(RunSweep, RejectsOutOfBlockOperands) {
  StateVector<double> state(6);
  const Gate g = Gate::h(4);
  EXPECT_THROW(run_sweep(state, &g, 1, 4), Error);
}

TEST(RunPlan, RandomCircuitsStraddlingTheBoundary) {
  // Random circuits on 8 qubits executed with block_qubits=4: targets land
  // below, at, and above the boundary, exercising sweeps, pass-throughs,
  // and the transitions between them.
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Circuit c = qc::random_clifford_t(8, 100, seed);
    PlanOptions po;
    po.blocking = true;
    po.block_qubits = 4;
    const ExecutionPlan plan = compile_plan(c, po);
    plan.validate();

    StateVector<double> blocked(8);
    const EngineStats stats = run_plan(blocked, plan);
    EXPECT_EQ(stats.blocked_gates + stats.passthrough_gates, c.size());
    EXPECT_EQ(stats.traversals, plan.traversals());

    const auto got = blocked.to_vector();
    const auto want = qc::dense::run(c);
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-10);
  }
}

TEST(RunPlan, FusedCircuitMatchesDense) {
  const Circuit c = qc::random_quantum_volume(7, 5, 21);
  PlanOptions po;
  po.fusion = true;
  po.fusion_width = 3;
  po.blocking = true;
  po.block_qubits = 4;
  StateVector<double> state(7);
  run_plan(state, compile_plan(c, po));
  const auto got = state.to_vector();
  const auto want = qc::dense::run(c);
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9);
}

TEST(RunPlan, RejectsMeasureWithoutHook) {
  // The engine is purely unitary: a MeasureFlush phase needs the Simulator's
  // measure hook (RNG + classical bits); the bare engine must refuse it.
  Circuit c(4, 4);
  c.h(0).measure(0, 0);
  PlanOptions po;
  po.blocking = true;
  po.block_qubits = 2;
  StateVector<double> state(4);
  EXPECT_THROW(run_plan(state, compile_plan(c, po)), Error);
}

TEST(EngineStats, GatesPerTraversalCountsBothPaths) {
  EngineStats s;
  s.blocked_gates = 6;
  s.passthrough_gates = 2;
  s.traversals = 3;
  EXPECT_NEAR(s.gates_per_traversal(), 8.0 / 3.0, 1e-12);
  EXPECT_EQ(EngineStats{}.gates_per_traversal(), 0.0);
}

}  // namespace
}  // namespace svsim::sv
