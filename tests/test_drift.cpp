#include "perf/report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

namespace svsim::perf {
namespace {

/// Mirrors the CLI --drift flow: model the circuit with a recorded trace,
/// then run the real simulator under the global tracer with identical
/// fusion settings so both sides execute the same prepared gate sequence.
DriftReport drift_for(const qc::Circuit& circuit, bool fusion,
                      unsigned fusion_width = 3) {
  PerfOptions perf_opts;
  perf_opts.fusion = fusion;
  perf_opts.fusion_width = fusion_width;
  perf_opts.record_trace = true;
  const PerfReport model = simulate_circuit(
      circuit, machine::MachineSpec::a64fx(), {}, perf_opts);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  sv::SimulatorOptions sim_opts;
  sim_opts.fusion = fusion;
  sim_opts.fusion_width = fusion_width;
  sv::Simulator<double> sim(sim_opts);
  sim.run(circuit);
  tracer.disable();
  const DriftReport drift = drift_report(model, tracer.collect());
  tracer.clear();
  return drift;
}

TEST(Drift, KnownCircuitJoinsWithoutOrphans) {
  const qc::Circuit circuit = qc::qft(6);
  const DriftReport drift = drift_for(circuit, /*fusion=*/false);
  EXPECT_EQ(drift.orphan_spans, 0u);
  EXPECT_EQ(drift.orphan_model, 0u);
  EXPECT_EQ(drift.matched, circuit.size());
  EXPECT_FALSE(drift.rows.empty());
  EXPECT_GT(drift.measured_total_seconds, 0.0);
  EXPECT_GT(drift.modeled_total_seconds, 0.0);
}

TEST(Drift, FusedCircuitAlsoJoins) {
  const DriftReport drift = drift_for(qc::qft(6), /*fusion=*/true, 3);
  EXPECT_EQ(drift.orphan_spans, 0u);
  EXPECT_EQ(drift.orphan_model, 0u);
  EXPECT_GT(drift.matched, 0u);
  EXPECT_LT(drift.matched, qc::qft(6).size());  // fusion shrank the sequence
}

TEST(Drift, RowCountsSumToMatched) {
  const DriftReport drift = drift_for(qc::ghz(6), /*fusion=*/false);
  std::size_t total = 0;
  for (const DriftRow& r : drift.rows) total += r.count;
  EXPECT_EQ(total, drift.matched);
}

TEST(Drift, RowsSortedByMeasuredTime) {
  const DriftReport drift = drift_for(qc::qft(7), /*fusion=*/false);
  for (std::size_t i = 1; i < drift.rows.size(); ++i)
    EXPECT_GE(drift.rows[i - 1].measured_seconds,
              drift.rows[i].measured_seconds);
}

TEST(Drift, MismatchedCircuitsReportOrphans) {
  PerfOptions perf_opts;
  perf_opts.record_trace = true;
  const PerfReport model = simulate_circuit(
      qc::qft(5), machine::MachineSpec::a64fx(), {}, perf_opts);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  sv::Simulator<double> sim;
  sim.run(qc::ghz(5));
  tracer.disable();
  const DriftReport drift = drift_report(model, tracer.collect());
  tracer.clear();
  EXPECT_GT(drift.orphan_spans + drift.orphan_model, 0u);
}

TEST(Drift, EmptySpanListIsAllModelOrphans) {
  PerfOptions perf_opts;
  perf_opts.record_trace = true;
  const PerfReport model = simulate_circuit(
      qc::qft(4), machine::MachineSpec::a64fx(), {}, perf_opts);
  const DriftReport drift = drift_report(model, {});
  EXPECT_EQ(drift.matched, 0u);
  EXPECT_EQ(drift.orphan_spans, 0u);
  EXPECT_EQ(drift.orphan_model, model.trace.size());
  EXPECT_TRUE(drift.rows.empty());
}

TEST(Drift, DroppedSpansMarkReportPartial) {
  PerfOptions perf_opts;
  perf_opts.record_trace = true;
  const PerfReport model = simulate_circuit(
      qc::qft(4), machine::MachineSpec::a64fx(), {}, perf_opts);

  const DriftReport clean = drift_report(model, {});
  EXPECT_FALSE(clean.partial());
  EXPECT_EQ(drift_table(clean).to_text().find("PARTIAL"), std::string::npos);

  const DriftReport partial = drift_report(model, {}, /*dropped_spans=*/17);
  EXPECT_TRUE(partial.partial());
  EXPECT_EQ(partial.dropped_spans, 17u);
  const std::string rendered = drift_table(partial).to_text();
  EXPECT_NE(rendered.find("PARTIAL: 17 spans dropped"), std::string::npos);
}

TEST(Drift, TableHasRowPerKernelPlusTotal) {
  const DriftReport drift = drift_for(qc::qft(6), /*fusion=*/false);
  const Table t = drift_table(drift);
  EXPECT_EQ(t.num_rows(), drift.rows.size() + 1);
  const auto& total_row = t.row(t.num_rows() - 1);
  EXPECT_EQ(std::get<std::string>(total_row[0]), "TOTAL");
  EXPECT_EQ(std::get<std::int64_t>(total_row[1]),
            static_cast<std::int64_t>(drift.matched));
  EXPECT_NE(t.to_text().find("ratio"), std::string::npos);
}

}  // namespace
}  // namespace svsim::perf
