#include "qc/grouping.hpp"

#include <gtest/gtest.h>

#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "sv/estimator.hpp"

namespace svsim::qc {
namespace {

TEST(QubitwiseCommute, BasicCases) {
  const auto p = [](const char* s) { return PauliString::from_label(s); };
  EXPECT_TRUE(qubitwise_commute(p("XI"), p("IX")));
  EXPECT_TRUE(qubitwise_commute(p("XX"), p("XI")));
  EXPECT_TRUE(qubitwise_commute(p("ZZ"), p("ZI")));
  EXPECT_TRUE(qubitwise_commute(p("II"), p("XY")));
  EXPECT_FALSE(qubitwise_commute(p("XI"), p("ZI")));
  // XX and ZZ commute as a group but NOT qubit-wise.
  EXPECT_FALSE(qubitwise_commute(p("XX"), p("ZZ")));
}

TEST(Grouping, CompatibleTermsShareAGroup) {
  PauliOperator op(3);
  op.add(1.0, "ZZI").add(0.5, "IZZ").add(0.25, "ZIZ");
  const auto groups = group_qubitwise_commuting(op);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].terms.size(), 3u);
  EXPECT_EQ(groups[0].basis, (std::vector<char>{'Z', 'Z', 'Z'}));
}

TEST(Grouping, IncompatibleTermsSplit) {
  PauliOperator op(2);
  op.add(1.0, "ZZ").add(1.0, "XX").add(1.0, "ZI").add(1.0, "IX");
  const auto groups = group_qubitwise_commuting(op);
  // {ZZ, ZI} and {XX, IX}.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].terms.size() + groups[1].terms.size(), 4u);
}

TEST(Grouping, TfimNeedsExactlyTwoGroups) {
  // All ZZ bonds are mutually QWC; all X fields are mutually QWC; they
  // conflict with each other.
  const auto h = tfim_hamiltonian(6, 1.0, 0.7);
  const auto groups = group_qubitwise_commuting(h);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(Grouping, EveryTermAppearsExactlyOnce) {
  const auto h = heisenberg_hamiltonian(5, 1.0, 0.8, 0.6);
  const auto groups = group_qubitwise_commuting(h);
  std::size_t total = 0;
  for (const auto& g : groups) {
    total += g.terms.size();
    // All members must be QWC-compatible with the group basis.
    for (const auto& t : g.terms)
      for (unsigned q = 0; q < 5; ++q) {
        const char c = t.pauli.pauli_at(q);
        if (c != 'I') EXPECT_EQ(c, g.basis[q]);
      }
  }
  EXPECT_EQ(total, h.size());
}

TEST(Grouping, BasisCircuitDiagonalizesMembers) {
  PauliOperator op(3);
  op.add(1.0, "XYI").add(0.5, "XIZ");
  const auto groups = group_qubitwise_commuting(op);
  ASSERT_EQ(groups.size(), 1u);
  const Circuit basis = measurement_basis_circuit(groups[0], 3);
  // Conjugating each member by the basis circuit must give a diagonal
  // matrix: B P B† diagonal.
  const Matrix b = dense::circuit_unitary(basis);
  for (const auto& term : groups[0].terms) {
    const Matrix conj = b * term.pauli.to_matrix() * b.dagger();
    EXPECT_TRUE(conj.is_diagonal(1e-10)) << term.pauli.to_label();
  }
}

TEST(Grouping, DiagonalTermValue) {
  const auto zz = PauliString::from_label("ZZ");
  EXPECT_DOUBLE_EQ(diagonal_term_value(zz, 0b00), 1.0);
  EXPECT_DOUBLE_EQ(diagonal_term_value(zz, 0b01), -1.0);
  EXPECT_DOUBLE_EQ(diagonal_term_value(zz, 0b10), -1.0);
  EXPECT_DOUBLE_EQ(diagonal_term_value(zz, 0b11), 1.0);
}

TEST(Estimator, ConvergesToExactExpectation) {
  const unsigned n = 5;
  const auto ham = tfim_hamiltonian(n, 1.0, 0.9);
  std::vector<double> params(2ull * n * 2, 0.3);
  const Circuit ansatz = hardware_efficient_ansatz(n, 2, params);

  sv::Simulator<double> sim;
  const double exact = sim.expectation(ansatz, ham);
  const auto est = sv::estimate_expectation(sim, ansatz, ham, 20000);
  EXPECT_EQ(est.groups, 2u);
  EXPECT_EQ(est.total_shots, 40000u);
  EXPECT_NEAR(est.value, exact, 0.15);
}

TEST(Estimator, ExactForDiagonalObservableOnBasisState) {
  Circuit c(3);
  c.x(0).x(2);
  PauliOperator op(3);
  op.add(2.0, "IIZ").add(3.0, "ZII").add(1.0, "III");
  sv::Simulator<double> sim;
  const auto est = sv::estimate_expectation(sim, c, op, 100);
  // |101>: <Z_0> = -1, <Z_2> = -1, identity = 1 -> 2(-1)+3(-1)+1 = -4.
  EXPECT_NEAR(est.value, -4.0, 1e-12);
}

TEST(Estimator, ValidatesInput) {
  Circuit c(2);
  c.h(0);
  PauliOperator wrong(3);
  wrong.add(1.0, "ZZZ");
  sv::Simulator<double> sim;
  EXPECT_THROW(sv::estimate_expectation(sim, c, wrong, 10), Error);
  Circuit measured(2);
  measured.h(0).measure(0, 0);
  PauliOperator op(2);
  op.add(1.0, "ZZ");
  EXPECT_THROW(sv::estimate_expectation(sim, measured, op, 10), Error);
  EXPECT_THROW(sv::estimate_expectation(sim, c, op, 0), Error);
}

}  // namespace
}  // namespace svsim::qc
