#include "sv/gradient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qc/library.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;

/// Central finite-difference gradient for comparison.
std::vector<double> finite_difference(Simulator<double>& sim,
                                      const Circuit& circuit,
                                      const qc::PauliOperator& obs,
                                      double eps = 1e-6) {
  const auto indices = shiftable_parameters(circuit);
  std::vector<double> grad;
  for (const std::size_t idx : indices) {
    auto perturbed = [&](double delta) {
      Circuit c(circuit.num_qubits(), circuit.num_clbits());
      for (std::size_t i = 0; i < circuit.size(); ++i) {
        qc::Gate g = circuit.gate(i);
        if (i == idx) g.params[0] += delta;
        c.append(std::move(g));
      }
      return sim.expectation(c, obs);
    };
    grad.push_back((perturbed(eps) - perturbed(-eps)) / (2 * eps));
  }
  return grad;
}

TEST(Gradient, SingleRotationAnalytic) {
  // <Z> of RY(θ)|0> = cos θ, gradient = -sin θ.
  Circuit c(1);
  c.ry(0, 0.6);
  qc::PauliOperator z(1);
  z.add(1.0, "Z");
  Simulator<double> sim;
  const auto grad = parameter_shift_gradient(sim, c, z);
  ASSERT_EQ(grad.size(), 1u);
  EXPECT_NEAR(grad[0], -std::sin(0.6), 1e-10);
}

TEST(Gradient, MatchesFiniteDifferencesOnAnsatz) {
  const unsigned n = 4;
  std::vector<double> params;
  for (std::size_t i = 0; i < 2ull * n * 2; ++i)
    params.push_back(0.1 * static_cast<double>(i + 1));
  const Circuit c = qc::hardware_efficient_ansatz(n, 2, params);
  const auto ham = qc::tfim_hamiltonian(n, 1.0, 0.8);
  Simulator<double> sim;
  const auto analytic = parameter_shift_gradient(sim, c, ham);
  const auto numeric = finite_difference(sim, c, ham);
  ASSERT_EQ(analytic.size(), numeric.size());
  ASSERT_EQ(analytic.size(), params.size());
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "param " << i;
}

TEST(Gradient, MatchesFiniteDifferencesWithTwoQubitRotations) {
  Circuit c(3);
  c.h(0).h(1).h(2)
      .rzz(0, 1, 0.4).rxx(1, 2, 0.7).ryy(0, 2, 0.2)
      .p(0, 0.9).cp(1, 2, 0.5).rz(1, 1.1);
  qc::PauliOperator obs(3);
  obs.add(0.7, "ZZI").add(0.3, "IXX").add(0.2, "YIY");
  Simulator<double> sim;
  const auto analytic = parameter_shift_gradient(sim, c, obs);
  const auto numeric = finite_difference(sim, c, obs);
  ASSERT_EQ(analytic.size(), 6u);
  for (std::size_t i = 0; i < analytic.size(); ++i)
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "param " << i;
}

TEST(Gradient, ShiftableParameterDiscovery) {
  Circuit c(2);
  c.h(0).rx(0, 0.1).cx(0, 1).rz(1, 0.2).t(0).cp(0, 1, 0.3);
  const auto idx = shiftable_parameters(c);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Gradient, RejectsUnsupportedKinds) {
  qc::PauliOperator z(2);
  z.add(1.0, "ZI");
  Simulator<double> sim;
  Circuit u(2);
  u.u(0, 0.1, 0.2, 0.3);
  EXPECT_THROW(parameter_shift_gradient(sim, u, z), Error);
  Circuit crz(2);
  crz.crz(0, 1, 0.4);
  EXPECT_THROW(parameter_shift_gradient(sim, crz, z), Error);
  Circuit measured(2);
  measured.rx(0, 0.1).measure(0, 0);
  EXPECT_THROW(parameter_shift_gradient(sim, measured, z), Error);
}

TEST(Gradient, ZeroAtStationaryPoint) {
  // |+> is stationary for <X> under RX rotation.
  Circuit c(1);
  c.h(0).rx(0, 0.0);
  qc::PauliOperator x(1);
  x.add(1.0, "X");
  Simulator<double> sim;
  const auto grad = parameter_shift_gradient(sim, c, x);
  EXPECT_NEAR(grad[0], 0.0, 1e-10);
}

TEST(Gradient, GradientDescentReducesEnergy) {
  // Five plain gradient steps on a small ansatz must lower <H>.
  const unsigned n = 3;
  std::vector<double> params(2ull * n, 0.4);
  const auto ham = qc::tfim_hamiltonian(n, 1.0, 1.0);
  Simulator<double> sim;
  auto energy_of = [&](const std::vector<double>& p) {
    return sim.expectation(qc::hardware_efficient_ansatz(n, 1, p), ham);
  };
  double prev = energy_of(params);
  const double lr = 0.1;
  for (int step = 0; step < 5; ++step) {
    const Circuit c = qc::hardware_efficient_ansatz(n, 1, params);
    const auto grad = parameter_shift_gradient(sim, c, ham);
    ASSERT_EQ(grad.size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr * grad[i];
  }
  EXPECT_LT(energy_of(params), prev - 1e-3);
}

}  // namespace
}  // namespace svsim::sv
