#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace svsim {
namespace {

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), 1ull << 63);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(4), 0xFu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1ull << 63), 63u);
}

TEST(Bits, SingleBitOps) {
  EXPECT_TRUE(test_bit(0b1010, 1));
  EXPECT_FALSE(test_bit(0b1010, 0));
  EXPECT_EQ(set_bit(0b1000, 1), 0b1010u);
  EXPECT_EQ(clear_bit(0b1010, 1), 0b1000u);
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011u);
  EXPECT_EQ(flip_bit(0b1010, 1), 0b1000u);
}

TEST(Bits, InsertZeroBitAtZero) {
  // Inserting at position 0 doubles the value.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull})
    EXPECT_EQ(insert_zero_bit(v, 0), v * 2);
}

TEST(Bits, InsertZeroBitMiddle) {
  // v = 0b1011, insert at pos 2 -> 0b10011.
  EXPECT_EQ(insert_zero_bit(0b1011, 2), 0b10011u);
  // Bit `pos` of the result is always zero.
  for (unsigned pos = 0; pos < 8; ++pos)
    for (std::uint64_t v = 0; v < 64; ++v)
      EXPECT_FALSE(test_bit(insert_zero_bit(v, pos), pos));
}

TEST(Bits, InsertZeroBitEnumeratesLowerPairIndices) {
  // For n=4, target=2: the 8 counters must map exactly onto the 8 indices
  // with bit 2 clear.
  const unsigned t = 2;
  std::vector<std::uint64_t> got;
  for (std::uint64_t c = 0; c < 8; ++c) got.push_back(insert_zero_bit(c, t));
  std::vector<std::uint64_t> want = {0, 1, 2, 3, 8, 9, 10, 11};
  EXPECT_EQ(got, want);
}

TEST(Bits, InsertZeroBitsMultiple) {
  // Insert zeros at {0, 2}: counter c enumerates indices with bits 0 and 2
  // clear, in increasing order.
  const std::vector<unsigned> pos = {0, 2};
  std::vector<std::uint64_t> got;
  for (std::uint64_t c = 0; c < 4; ++c) got.push_back(insert_zero_bits(c, pos));
  std::vector<std::uint64_t> want = {0b0000, 0b0010, 0b1000, 0b1010};
  EXPECT_EQ(got, want);
}

TEST(Bits, GatherScatterRoundTrip) {
  const std::vector<unsigned> bits = {1, 3, 4};
  for (std::uint64_t packed = 0; packed < 8; ++packed) {
    const std::uint64_t scattered = scatter_bits(packed, bits);
    EXPECT_EQ(gather_bits(scattered, bits), packed);
  }
}

TEST(Bits, GatherBitsOrder) {
  // gather respects the order of the bit list, not numeric order.
  const std::vector<unsigned> bits = {3, 0};
  // v = 0b1000: bit 3 set -> result bit 0 set.
  EXPECT_EQ(gather_bits(0b1000, bits), 0b01u);
  // v = 0b0001: bit 0 set -> result bit 1 set.
  EXPECT_EQ(gather_bits(0b0001, bits), 0b10u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  // Involution.
  for (std::uint64_t v = 0; v < 32; ++v)
    EXPECT_EQ(reverse_bits(reverse_bits(v, 5), 5), v);
}

class InsertZeroProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(InsertZeroProperty, PreservesOrderAndSkipsBit) {
  const unsigned pos = GetParam();
  std::uint64_t prev = 0;
  for (std::uint64_t c = 1; c < 256; ++c) {
    const std::uint64_t cur = insert_zero_bit(c, pos);
    EXPECT_GT(cur, prev) << "monotone in the counter";
    EXPECT_FALSE(test_bit(cur, pos));
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, InsertZeroProperty,
                         ::testing::Values(0u, 1u, 2u, 5u, 11u, 30u));

}  // namespace
}  // namespace svsim
