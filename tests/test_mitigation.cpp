#include "sv/mitigation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;

TEST(Folding, ScaleOneIsIdentityTransform) {
  const Circuit c = qc::random_clifford_t(3, 20, 4);
  const Circuit f = fold_global(c, 1);
  EXPECT_EQ(f.size(), c.size());
}

TEST(Folding, FoldedCircuitIsNoiselesslyEquivalent) {
  const Circuit c = qc::random_clifford_t(4, 30, 9);
  for (unsigned scale : {3u, 5u}) {
    const Circuit f = fold_global(c, scale);
    EXPECT_EQ(f.size(), c.size() * scale);
    EXPECT_LT(qc::dense::distance(qc::dense::run(c), qc::dense::run(f)),
              1e-9)
        << "scale " << scale;
  }
}

TEST(Folding, Validation) {
  Circuit c(2);
  c.h(0);
  EXPECT_THROW(fold_global(c, 2), Error);   // even scale
  Circuit m(2);
  m.h(0).measure(0, 0);
  EXPECT_THROW(fold_global(m, 3), Error);   // non-unitary
}

TEST(Richardson, ExactOnPolynomials) {
  // y = 3 - 2x + 0.5x²: three points recover y(0) = 3 exactly.
  auto y = [](double x) { return 3.0 - 2.0 * x + 0.5 * x * x; };
  EXPECT_NEAR(richardson_extrapolate({1, 3, 5}, {y(1), y(3), y(5)}), 3.0,
              1e-12);
  // Linear recovered exactly with two points: y = 3 - 2x.
  EXPECT_NEAR(richardson_extrapolate({1, 3}, {1.0, -3.0}), 3.0, 1e-12);
  EXPECT_THROW(richardson_extrapolate({1, 1}, {0, 0}), Error);
  EXPECT_THROW(richardson_extrapolate({}, {}), Error);
}

TEST(Zne, NoiselessScalesAllAgree) {
  // Even qubit count: <Z...Z> of GHZ_4 is +1 (odd counts give 0).
  const Circuit c = qc::ghz(4);
  qc::PauliOperator zzz(4);
  zzz.add(1.0, "ZZZZ");
  Simulator<double> sim;  // no noise
  const ZneResult r = zero_noise_extrapolation(sim, c, zzz, 3, {1, 3});
  EXPECT_NEAR(r.values[0], 1.0, 1e-9);
  EXPECT_NEAR(r.values[1], 1.0, 1e-9);
  EXPECT_NEAR(r.extrapolated, 1.0, 1e-9);
}

TEST(Zne, MitigatesDepolarizingNoiseOnGhzParity) {
  // The headline property: the extrapolated estimate is closer to the ideal
  // value than the raw noisy measurement.
  const unsigned n = 4;
  const Circuit c = qc::ghz(n);
  qc::PauliOperator zzz(n);
  zzz.add(1.0, "ZZZZ");
  const double ideal = 1.0;

  SimulatorOptions opts;
  opts.noise.add_depolarizing(0.04);
  opts.seed = 19;
  Simulator<double> sim(opts);

  // Two scales with enough trajectories that statistical error (~0.03 after
  // the Richardson weights) stays well below the raw bias.
  const int traj = 3000;
  const ZneResult r = zero_noise_extrapolation(sim, c, zzz, traj, {1, 3});
  const double raw_error = std::abs(r.values[0] - ideal);
  const double mitigated_error = std::abs(r.extrapolated - ideal);
  // Noise visibly degrades the raw value...
  EXPECT_GT(raw_error, 0.1);
  // ...folding amplifies it...
  EXPECT_GT(r.values[0], r.values[1] + 0.05);
  // ...and ZNE recovers most of it.
  EXPECT_LT(mitigated_error, raw_error * 0.6);
}

TEST(Zne, Validation) {
  Circuit c(2);
  c.h(0);
  qc::PauliOperator z(2);
  z.add(1.0, "ZI");
  Simulator<double> sim;
  EXPECT_THROW(zero_noise_extrapolation(sim, c, z, 0), Error);
  EXPECT_THROW(zero_noise_extrapolation(sim, c, z, 5, {}), Error);
}

}  // namespace
}  // namespace svsim::sv
