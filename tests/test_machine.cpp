#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machine/bandwidth_model.hpp"
#include "machine/cache_probe.hpp"
#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "machine/roofline.hpp"

namespace svsim::machine {
namespace {

TEST(MachineSpec, A64fxHeadlineNumbers) {
  const MachineSpec m = MachineSpec::a64fx();
  EXPECT_EQ(m.total_cores(), 48u);
  EXPECT_EQ(m.numa_domains, 4u);
  // 512-bit SVE, 2 pipes: 32 DP flops/cycle/core.
  EXPECT_DOUBLE_EQ(m.flops_per_cycle_per_core(8), 32.0);
  // Peak ~3.072 TFLOPS at 2.0 GHz.
  EXPECT_NEAR(m.peak_gflops(8), 3072.0, 1.0);
  // Single precision doubles the peak.
  EXPECT_NEAR(m.peak_gflops(4), 6144.0, 1.0);
  // STREAM ~830 GB/s (the published triad number).
  EXPECT_NEAR(m.stream_bandwidth_gbps(), 830.0, 10.0);
  // 256-byte cache lines.
  EXPECT_EQ(m.mem_line_bytes(), 256u);
  // L2 total: 4 CMG x 8 MiB.
  EXPECT_EQ(m.llc_total_bytes(), 4ull * 8 * 1024 * 1024);
}

TEST(MachineSpec, BoostAndEcoVariants) {
  const MachineSpec normal = MachineSpec::a64fx();
  const MachineSpec boost = MachineSpec::a64fx_boost();
  const MachineSpec eco = MachineSpec::a64fx_eco();
  EXPECT_NEAR(boost.peak_gflops() / normal.peak_gflops(), 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(eco.peak_gflops(), normal.peak_gflops() / 2.0);
  EXPECT_GT(boost.core_max_watts, normal.core_max_watts);
  EXPECT_LT(eco.core_max_watts, normal.core_max_watts);
}

TEST(MachineSpec, Fx700Variant) {
  const MachineSpec fx = MachineSpec::a64fx_fx700();
  EXPECT_NEAR(fx.peak_gflops(), 3072.0 * 1.8 / 2.0, 1.0);
  EXPECT_EQ(fx.total_cores(), 48u);
  // Same HBM2 memory system: STREAM unchanged.
  EXPECT_DOUBLE_EQ(fx.stream_bandwidth_gbps(),
                   MachineSpec::a64fx().stream_bandwidth_gbps());
}

TEST(MachineSpec, ScaledMultipliesComputeAndBandwidth) {
  const MachineSpec base = MachineSpec::a64fx();
  const MachineSpec fast = base.scaled(2.0, 3.0);
  EXPECT_DOUBLE_EQ(fast.clock_ghz, 2.0 * base.clock_ghz);
  EXPECT_DOUBLE_EQ(fast.peak_gflops(), 2.0 * base.peak_gflops());
  EXPECT_DOUBLE_EQ(fast.stream_bandwidth_gbps(),
                   3.0 * base.stream_bandwidth_gbps());
  ASSERT_EQ(fast.caches.size(), base.caches.size());
  for (std::size_t i = 0; i < base.caches.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast.caches[i].core_bandwidth_gbps,
                     3.0 * base.caches[i].core_bandwidth_gbps);
    // Capacity is a property of the silicon, not of the what-if knob.
    EXPECT_EQ(fast.caches[i].size_bytes, base.caches[i].size_bytes);
  }
  EXPECT_NE(fast.name, base.name);
  EXPECT_THROW(base.scaled(0.0, 1.0), Error);
  EXPECT_THROW(base.scaled(1.0, -2.0), Error);
}

TEST(MachineSpec, ComparatorMachines) {
  const MachineSpec xeon = MachineSpec::xeon_6148_dual();
  EXPECT_EQ(xeon.total_cores(), 40u);
  // A64FX has far more STREAM bandwidth than the Xeon node.
  EXPECT_GT(MachineSpec::a64fx().stream_bandwidth_gbps(),
            3 * xeon.stream_bandwidth_gbps());
  const MachineSpec tx2 = MachineSpec::thunderx2_dual();
  EXPECT_EQ(tx2.total_cores(), 64u);
  EXPECT_EQ(tx2.simd_bits, 128u);
}

TEST(Placement, CompactFillsDomainsInOrder) {
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig cfg;
  cfg.threads = 14;
  cfg.affinity = Affinity::Compact;
  const Placement p = place_threads(m, cfg);
  EXPECT_EQ(p.threads_per_domain, (std::vector<unsigned>{12, 2, 0, 0}));
  EXPECT_EQ(p.active_domains(), 2u);
  EXPECT_EQ(p.total_threads(), 14u);
}

TEST(Placement, ScatterRoundRobins) {
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig cfg;
  cfg.threads = 6;
  cfg.affinity = Affinity::Scatter;
  const Placement p = place_threads(m, cfg);
  EXPECT_EQ(p.threads_per_domain, (std::vector<unsigned>{2, 2, 1, 1}));
  EXPECT_EQ(p.active_domains(), 4u);
}

TEST(Placement, ZeroMeansAllCores) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  EXPECT_EQ(p.total_threads(), 48u);
}

TEST(Placement, RejectsOversubscription) {
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig cfg;
  cfg.threads = 49;
  EXPECT_THROW(place_threads(m, cfg), Error);
}

TEST(BandwidthModel, ServingLevelTransitions) {
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig cfg;
  cfg.threads = 48;
  const Placement p = place_threads(m, cfg);
  // 1 MiB << 48 x 64 KiB L1: level 0.
  EXPECT_EQ(serving_level(m, p, 1u << 20), 0);
  // 16 MiB fits 4 x 8 MiB L2 but not L1 aggregate (3 MiB): level 1.
  EXPECT_EQ(serving_level(m, p, 16u << 20), 1);
  // 1 GiB: memory.
  EXPECT_EQ(serving_level(m, p, 1u << 30), -1);
}

TEST(BandwidthModel, MemoryBandwidthSaturatesPerDomain) {
  const MachineSpec m = MachineSpec::a64fx();
  // One thread: limited by the core rate.
  ExecConfig one;
  one.threads = 1;
  EXPECT_NEAR(memory_bandwidth_gbps(m, place_threads(m, one)),
              m.core_mem_bandwidth_gbps, 1e-9);
  // Full CMG (12 threads compact): capped at the CMG STREAM ceiling.
  ExecConfig cmg;
  cmg.threads = 12;
  EXPECT_NEAR(memory_bandwidth_gbps(m, place_threads(m, cmg)),
              256.0 * 0.81, 1e-6);
  // All 48: four CMGs worth.
  ExecConfig all;
  all.threads = 48;
  EXPECT_NEAR(memory_bandwidth_gbps(m, place_threads(m, all)),
              4 * 256.0 * 0.81, 1e-6);
}

TEST(BandwidthModel, ScatterBeatsCompactAtLowThreadCounts) {
  // 4 threads scattered reach 4 HBM stacks; compact threads share one.
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig compact;
  compact.threads = 8;
  compact.affinity = Affinity::Compact;
  ExecConfig scatter = compact;
  scatter.affinity = Affinity::Scatter;
  const double bw_c = memory_bandwidth_gbps(m, place_threads(m, compact));
  const double bw_s = memory_bandwidth_gbps(m, place_threads(m, scatter));
  // 8 compact threads: min(8x40, 207) = 207 on one CMG.
  // 8 scattered: 2 per CMG -> 4 x min(80, 207) = 320.
  EXPECT_GT(bw_s, bw_c);
}

TEST(BandwidthModel, AffinityIrrelevantAtFullOccupancy) {
  const MachineSpec m = MachineSpec::a64fx();
  ExecConfig compact;
  compact.affinity = Affinity::Compact;
  ExecConfig scatter;
  scatter.affinity = Affinity::Scatter;
  EXPECT_DOUBLE_EQ(memory_bandwidth_gbps(m, place_threads(m, compact)),
                   memory_bandwidth_gbps(m, place_threads(m, scatter)));
}

TEST(BandwidthModel, CacheRegimeIsFasterThanMemory) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  const double l1 = effective_bandwidth_gbps(m, p, 1u << 20);
  const double l2 = effective_bandwidth_gbps(m, p, 16u << 20);
  const double mem = effective_bandwidth_gbps(m, p, 1u << 30);
  EXPECT_GT(l1, l2);
  EXPECT_GT(l2, mem);
}

TEST(Roofline, PeakScalesWithVectorLengthAndPrecision) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  ExecConfig full;
  EXPECT_NEAR(placement_peak_gflops(m, p, full), 3072.0, 1.0);
  ExecConfig half;
  half.vector_bits = 256;
  EXPECT_NEAR(placement_peak_gflops(m, p, half), 1536.0, 1.0);
  ExecConfig sp;  // single precision doubles lanes
  sp.element_bytes = 4;
  EXPECT_NEAR(placement_peak_gflops(m, p, sp), 6144.0, 1.0);
}

TEST(Roofline, MemoryBoundBelowRidge) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  ExecConfig cfg;
  // State-vector 1q gate: AI ~ 0.44 on a huge footprint -> memory bound.
  const RooflinePoint pt = roofline(m, p, cfg, 0.44, 1.0, 1ull << 32);
  EXPECT_TRUE(pt.memory_bound);
  EXPECT_NEAR(pt.attainable_gflops, 0.44 * 830.0, 10.0);
  // Far above the ridge: compute bound.
  const RooflinePoint hi = roofline(m, p, cfg, 100.0, 1.0, 1ull << 32);
  EXPECT_FALSE(hi.memory_bound);
  EXPECT_NEAR(hi.attainable_gflops, 3072.0, 1.0);
}

TEST(Roofline, RidgeIntensityConsistent) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  ExecConfig cfg;
  const double ridge = ridge_intensity(m, p, cfg, 1.0, 1ull << 32);
  // Peak / STREAM ≈ 3072 / 830 ≈ 3.7 flop/byte.
  EXPECT_NEAR(ridge, 3072.0 / 830.0, 0.1);
  const RooflinePoint at = roofline(m, p, cfg, ridge, 1.0, 1ull << 32);
  EXPECT_NEAR(at.attainable_gflops, at.compute_roof_gflops,
              at.compute_roof_gflops * 0.01);
}

TEST(Roofline, VectorWidthValidation) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  ExecConfig cfg;
  cfg.vector_bits = 32;  // below one double
  EXPECT_THROW(placement_peak_gflops(m, p, cfg), Error);
}

TEST(MachineSpec, GenericHostSanity) {
  const MachineSpec h = MachineSpec::generic_host(4, 3.0, 20.0);
  EXPECT_EQ(h.total_cores(), 4u);
  EXPECT_NEAR(h.stream_bandwidth_gbps(), 20.0, 1e-9);
  EXPECT_THROW(MachineSpec::generic_host(0, 3.0, 20.0), Error);
}

TEST(Roofline, PlacementMatchesDirectRooflineCall) {
  const MachineSpec m = MachineSpec::a64fx();
  const Placement p = place_threads(m, {});
  const ExecConfig cfg;
  const double flops = 6.0e9;
  const double bytes = 4.0e9;
  const std::uint64_t footprint = 1ull << 30;
  const RooflinePlacement placed =
      place_on_roofline(m, p, cfg, flops, bytes, 1.0, footprint);
  const RooflinePoint direct =
      roofline(m, p, cfg, flops / bytes, 1.0, footprint);
  EXPECT_DOUBLE_EQ(placed.point.arithmetic_intensity,
                   direct.arithmetic_intensity);
  EXPECT_DOUBLE_EQ(placed.point.attainable_gflops, direct.attainable_gflops);
  EXPECT_EQ(placed.point.memory_bound, direct.memory_bound);
  // Convenience accessors: flops at 1 GFLOP/s take flops * 1e-9 seconds.
  EXPECT_NEAR(placed.achieved_gflops(flops * 1e-9), 1.0, 1e-12);
  EXPECT_NEAR(placed.roof_fraction(flops * 1e-9),
              1.0 / direct.attainable_gflops, 1e-12);
  // Zero traffic: no intensity, no division by zero.
  const RooflinePlacement degenerate =
      place_on_roofline(m, p, cfg, flops, 0.0, 1.0, footprint);
  EXPECT_DOUBLE_EQ(degenerate.point.arithmetic_intensity, 0.0);
  EXPECT_DOUBLE_EQ(degenerate.achieved_gflops(0.0), 0.0);
}

TEST(CacheProbe, PointsCoverTheRequestedRange) {
  const CacheProbeResult r =
      run_cache_probe(/*min_bytes=*/32 << 10, /*max_bytes=*/256 << 10,
                      /*reps=*/1);
  ASSERT_GE(r.points.size(), 2u);
  EXPECT_EQ(r.points.front().bytes, std::uint64_t{32} << 10);
  EXPECT_EQ(r.points.back().bytes, std::uint64_t{256} << 10);
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_GT(r.points[i].gbps, 0.0);
    if (i > 0) EXPECT_EQ(r.points[i].bytes, r.points[i - 1].bytes * 2);
  }
  if (r.valid) {
    EXPECT_GE(r.effective_bytes, r.points.front().bytes);
    EXPECT_LE(r.effective_bytes, r.points.back().bytes);
    EXPECT_GT(r.cached_gbps, r.beyond_gbps);
  }
}

TEST(CacheProbe, ProcessWideResultIsCached) {
  const CacheProbeResult& a = probed_cache_budget();
  const CacheProbeResult& b = probed_cache_budget();
  EXPECT_EQ(&a, &b);
}

TEST(CacheProbe, DisagreementIsRelativeToTheDeclaredBudget) {
  const MachineSpec m = MachineSpec::a64fx();
  CacheProbeResult probe;
  probe.valid = true;
  probe.effective_bytes = m.cache_budget_per_core_bytes();
  EXPECT_DOUBLE_EQ(cache_budget_disagreement(m, probe), 0.0);
  probe.effective_bytes = m.cache_budget_per_core_bytes() * 2;
  EXPECT_DOUBLE_EQ(cache_budget_disagreement(m, probe), 1.0);
  EXPECT_GT(1.0, kCacheProbeWarnThreshold);
  probe.valid = false;
  EXPECT_DOUBLE_EQ(cache_budget_disagreement(m, probe), 0.0);
}

}  // namespace
}  // namespace svsim::machine
