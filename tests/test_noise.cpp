#include "sv/noise.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qc/library.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;
using qc::Gate;

TEST(NoiseModel, EmptyByDefault) {
  NoiseModel nm;
  EXPECT_TRUE(nm.empty());
  nm.add_depolarizing(0.01);
  EXPECT_FALSE(nm.empty());
  EXPECT_EQ(nm.channels().size(), 1u);
}

TEST(NoiseModel, ParameterValidation) {
  NoiseModel nm;
  EXPECT_THROW(nm.add_depolarizing(-0.1), Error);
  EXPECT_THROW(nm.add_depolarizing(1.5), Error);
  EXPECT_THROW(nm.add_bit_flip(2.0), Error);
  EXPECT_THROW(nm.add_phase_flip(-1.0), Error);
  EXPECT_THROW(nm.add_amplitude_damping(1.01), Error);
}

TEST(NoiseModel, ZeroProbabilityIsIdentity) {
  NoiseModel nm;
  nm.add_depolarizing(0.0).add_bit_flip(0.0).add_phase_flip(0.0);
  StateVector<double> sv(3);
  apply_h(sv.data(), 3, 0, sv.pool());
  const auto before = sv.to_vector();
  Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) nm.apply_after(sv, Gate::h(0), rng);
  const auto after = sv.to_vector();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]);
}

TEST(NoiseModel, CertainBitFlipActsAsX) {
  NoiseModel nm;
  nm.add_bit_flip(1.0);
  StateVector<double> sv(1);
  Xoshiro256 rng(2);
  nm.apply_after(sv, Gate::i(0), rng);
  // I gate is unitary so noise applies; X flips |0> -> |1>.
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
}

TEST(NoiseModel, PhaseFlipLeavesPopulationsFlipsCoherence) {
  NoiseModel nm;
  nm.add_phase_flip(1.0);
  StateVector<double> sv(1);
  apply_h(sv.data(), 1, 0, sv.pool());
  Xoshiro256 rng(3);
  nm.apply_after(sv, Gate::i(0), rng);
  // |+> -> |->: populations unchanged, amplitude of |1> negated.
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
  EXPECT_LT(sv.amplitude(1).real(), 0.0);
}

TEST(NoiseModel, ArityFilterSelectsGates) {
  NoiseModel nm;
  nm.add_bit_flip(1.0, /*arity=*/2);  // only after 2-qubit gates
  StateVector<double> sv(2);
  Xoshiro256 rng(4);
  nm.apply_after(sv, Gate::h(0), rng);  // arity 1: no noise
  EXPECT_NEAR(sv.probability_of_one(0), 0.0, 1e-12);
  sv.set_basis_state(0);
  nm.apply_after(sv, Gate::cx(0, 1), rng);  // arity 2: both qubits flip
  EXPECT_NEAR(sv.probability(3), 1.0, 1e-12);
}

TEST(NoiseModel, NoNoiseOnNonUnitaryOps) {
  NoiseModel nm;
  nm.add_bit_flip(1.0);
  StateVector<double> sv(1);
  Xoshiro256 rng(5);
  nm.apply_after(sv, Gate::measure(0, 0), rng);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
}

TEST(NoiseModel, DepolarizingDecaysGhzParity) {
  // With depolarizing noise, the GHZ parity <ZZZZ> averaged over
  // trajectories decays below the ideal value 1.
  const unsigned n = 4;
  const Circuit c = qc::ghz(n);
  qc::PauliOperator zzzz(n);
  zzzz.add(1.0, "ZZZZ");

  SimulatorOptions noisy;
  noisy.noise.add_depolarizing(0.05);
  noisy.seed = 7;
  Simulator<double> sim(noisy);
  double sum = 0.0;
  const int trajectories = 300;
  for (int k = 0; k < trajectories; ++k) sum += sim.expectation(c, zzzz);
  const double avg = sum / trajectories;
  EXPECT_LT(avg, 0.95);
  EXPECT_GT(avg, 0.2);
}

TEST(NoiseModel, AmplitudeDampingDrivesToGround) {
  // Repeated damping on |1> must decay it toward |0>.
  NoiseModel nm;
  nm.add_amplitude_damping(0.3);
  Xoshiro256 rng(11);
  int ground = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    StateVector<double> sv(1);
    apply_gate(sv, Gate::x(0));
    for (int step = 0; step < 12; ++step) nm.apply_after(sv, Gate::i(0), rng);
    ground += sv.probability(0) > 0.5;
  }
  // P(survive 12 steps) = 0.7^12 ≈ 1.4%.
  EXPECT_GT(ground, trials * 9 / 10);
}

TEST(NoiseModel, AmplitudeDampingPreservesNorm) {
  NoiseModel nm;
  nm.add_amplitude_damping(0.2);
  Xoshiro256 rng(13);
  StateVector<double> sv(3);
  apply_h(sv.data(), 3, 0, sv.pool());
  apply_gate(sv, Gate::cx(0, 1));
  for (int i = 0; i < 10; ++i) nm.apply_after(sv, Gate::h(2), rng);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10);
}

TEST(NoiseModel, TrajectoriesPreserveNormUnderAllChannels) {
  NoiseModel nm;
  nm.add_depolarizing(0.1).add_bit_flip(0.05).add_phase_flip(0.05)
      .add_amplitude_damping(0.1);
  Xoshiro256 rng(17);
  StateVector<double> sv(4);
  for (unsigned q = 0; q < 4; ++q) apply_h(sv.data(), 4, q, sv.pool());
  for (int i = 0; i < 30; ++i)
    nm.apply_after(sv, Gate::cx(i % 4, (i + 1) % 4), rng);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-9);
}


TEST(NoiseModel, ReadoutErrorValidationAndFlip) {
  NoiseModel nm;
  EXPECT_THROW(nm.set_readout_error(-0.1, 0.0), Error);
  EXPECT_THROW(nm.set_readout_error(0.0, 1.5), Error);
  EXPECT_FALSE(nm.has_readout_error());
  nm.set_readout_error(1.0, 1.0);  // always flip
  EXPECT_TRUE(nm.has_readout_error());
  EXPECT_FALSE(nm.empty());
  Xoshiro256 rng(1);
  EXPECT_TRUE(nm.flip_readout(false, rng));
  EXPECT_FALSE(nm.flip_readout(true, rng));
}

TEST(NoiseModel, ReadoutErrorBiasesCounts) {
  // Ideal |0>, but 10% of zeros read as one.
  Circuit c(1);
  c.measure(0, 0);
  SimulatorOptions opts;
  opts.noise.set_readout_error(0.1, 0.0);
  opts.seed = 21;
  Simulator<double> sim(opts);
  const auto counts = sim.sample_counts(c, 10000);
  const double ones =
      counts.count(1) ? static_cast<double>(counts.at(1)) : 0.0;
  EXPECT_NEAR(ones / 10000.0, 0.1, 0.02);
}

TEST(NoiseModel, ReadoutErrorDoesNotDisturbState) {
  // Trajectory path: measure mid-circuit with certain flip; the collapse
  // must follow the TRUE outcome, only the record flips.
  Circuit c(1);
  c.x(0).measure(0, 0);
  SimulatorOptions opts;
  opts.noise.set_readout_error(1.0, 1.0);
  Simulator<double> sim(opts);
  const auto state = sim.run(c);
  EXPECT_FALSE(sim.classical_bits()[0]);          // flipped record
  EXPECT_NEAR(state.probability(1), 1.0, 1e-12);  // true collapse
}

TEST(NoiseModel, ReadoutKeepsFastPath) {
  // Readout-only noise on a GHZ sampling run still yields correlated
  // outputs up to independent flips (i.e. mass concentrated near 00/11).
  Circuit c = qc::ghz(2);
  c.measure_all();
  SimulatorOptions opts;
  opts.noise.set_readout_error(0.05, 0.05);
  opts.seed = 5;
  Simulator<double> sim(opts);
  const auto counts = sim.sample_counts(c, 8000);
  const double diag =
      static_cast<double>((counts.count(0) ? counts.at(0) : 0) +
                          (counts.count(3) ? counts.at(3) : 0));
  EXPECT_NEAR(diag / 8000.0, 0.905, 0.03);  // (1-p)^2 + p^2 per branch
}

}  // namespace
}  // namespace svsim::sv
