// Kernel correctness: every optimized kernel is cross-checked against the
// independent dense reference (qc::dense) on random states, sweeping target
// and control positions across the register (low / middle / high bits hit
// the distinct code paths: contiguous runs, strided pairs, line-granular
// subsets).
#include "sv/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "qc/dense.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace svsim::sv {
namespace {

using qc::Gate;
using qc::Matrix;

/// Fills both an sv register and a dense vector with the same random state.
void random_state(unsigned n, StateVector<double>& sv,
                  std::vector<qc::cplx>& dense_state, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  dense_state.resize(pow2(n));
  double norm = 0.0;
  for (auto& a : dense_state) {
    a = {rng.normal(), rng.normal()};
    norm += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (auto& a : dense_state) a *= inv;
  sv.set_state(dense_state);
}

/// Applies `gate` via the optimized dispatcher and via the dense reference,
/// and checks the states agree.
void check_gate(const Gate& gate, unsigned n, std::uint64_t seed,
                double tol = 1e-11) {
  StateVector<double> sv(n);
  std::vector<qc::cplx> ref;
  random_state(n, sv, ref, seed);

  apply_gate(sv, gate);
  qc::dense::apply_gate(ref, gate, n);

  const auto got = sv.to_vector();
  double dist = 0.0;
  for (std::uint64_t i = 0; i < ref.size(); ++i)
    dist = std::max(dist, std::abs(got[i] - ref[i]));
  EXPECT_LT(dist, tol) << gate.to_string() << " on n=" << n;
}

// ---- parameterized sweep over target qubit -------------------------------

class SingleQubitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SingleQubitSweep, AllOneQubitKindsMatchReference) {
  const unsigned n = 9;
  const unsigned t = GetParam();
  std::uint64_t seed = 100 + t;
  check_gate(Gate::x(t), n, seed++);
  check_gate(Gate::y(t), n, seed++);
  check_gate(Gate::z(t), n, seed++);
  check_gate(Gate::h(t), n, seed++);
  check_gate(Gate::s(t), n, seed++);
  check_gate(Gate::sdg(t), n, seed++);
  check_gate(Gate::t(t), n, seed++);
  check_gate(Gate::tdg(t), n, seed++);
  check_gate(Gate::sx(t), n, seed++);
  check_gate(Gate::sxdg(t), n, seed++);
  check_gate(Gate::rx(t, 0.37), n, seed++);
  check_gate(Gate::ry(t, 0.58), n, seed++);
  check_gate(Gate::rz(t, 1.13), n, seed++);
  check_gate(Gate::p(t, 2.11), n, seed++);
  check_gate(Gate::u(t, 0.3, 0.7, 1.9), n, seed++);
}

INSTANTIATE_TEST_SUITE_P(TargetPositions, SingleQubitSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 7u, 8u));

// ---- parameterized sweep over (control, target) pairs --------------------

class TwoQubitSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(TwoQubitSweep, AllTwoQubitKindsMatchReference) {
  const unsigned n = 8;
  const auto [a, b] = GetParam();
  std::uint64_t seed = 500 + 10 * a + b;
  check_gate(Gate::cx(a, b), n, seed++);
  check_gate(Gate::cy(a, b), n, seed++);
  check_gate(Gate::cz(a, b), n, seed++);
  check_gate(Gate::ch(a, b), n, seed++);
  check_gate(Gate::cp(a, b, 0.77), n, seed++);
  check_gate(Gate::crx(a, b, 0.21), n, seed++);
  check_gate(Gate::cry(a, b, 0.43), n, seed++);
  check_gate(Gate::crz(a, b, 0.65), n, seed++);
  check_gate(Gate::swap(a, b), n, seed++);
  check_gate(Gate::iswap(a, b), n, seed++);
  check_gate(Gate::rxx(a, b, 0.5), n, seed++);
  check_gate(Gate::ryy(a, b, 0.6), n, seed++);
  check_gate(Gate::rzz(a, b, 0.7), n, seed++);
  Xoshiro256 mrng(seed);
  check_gate(Gate::u2q(a, b, Matrix::random_unitary(4, mrng)), n, seed);
}

INSTANTIATE_TEST_SUITE_P(
    QubitPairs, TwoQubitSweep,
    ::testing::Values(std::make_tuple(0u, 1u), std::make_tuple(1u, 0u),
                      std::make_tuple(0u, 7u), std::make_tuple(7u, 0u),
                      std::make_tuple(3u, 4u), std::make_tuple(6u, 2u),
                      std::make_tuple(5u, 7u)));

// ---- three-qubit and multi-controlled -------------------------------------

TEST(ThreeQubitKernels, MatchReference) {
  const unsigned n = 7;
  std::uint64_t seed = 900;
  check_gate(Gate::ccx(0, 1, 2), n, seed++);
  check_gate(Gate::ccx(4, 2, 6), n, seed++);
  check_gate(Gate::ccx(6, 5, 0), n, seed++);
  check_gate(Gate::ccz(1, 3, 5), n, seed++);
  check_gate(Gate::cswap(2, 0, 6), n, seed++);
  check_gate(Gate::cswap(6, 1, 2), n, seed++);
}

TEST(MultiControlledKernels, MatchReference) {
  const unsigned n = 8;
  std::uint64_t seed = 950;
  check_gate(Gate::mcx({0, 1, 2}, 3), n, seed++);
  check_gate(Gate::mcx({5, 6, 7}, 0), n, seed++);
  check_gate(Gate::mcx({0, 2, 4, 6}, 7), n, seed++);
  check_gate(Gate::mcp({1, 2}, 3, 0.9), n, seed++);
  check_gate(Gate::mcp({4, 5, 6, 7}, 0, 1.7), n, seed++);
}

// ---- dense k-qubit and diagonal kernels ------------------------------------

class FusedWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FusedWidthSweep, DenseUnitaryMatchesReference) {
  const unsigned n = 9;
  const unsigned k = GetParam();
  Xoshiro256 rng(1000 + k);
  // Random distinct qubit subset, deliberately unsorted.
  std::vector<unsigned> qs;
  while (qs.size() < k) {
    const auto q = static_cast<unsigned>(rng.uniform_int(n));
    if (std::find(qs.begin(), qs.end(), q) == qs.end()) qs.push_back(q);
  }
  check_gate(Gate::unitary(qs, Matrix::random_unitary(pow2(k), rng)), n,
             2000 + k);
}

INSTANTIATE_TEST_SUITE_P(Widths, FusedWidthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(DiagonalKernels, DiagKMatchesReference) {
  const unsigned n = 8;
  Xoshiro256 rng(31);
  for (const std::vector<unsigned> qs :
       {std::vector<unsigned>{2}, {0, 5}, {7, 1, 4}}) {
    std::vector<qc::cplx> d(pow2(static_cast<unsigned>(qs.size())));
    for (auto& v : d) v = std::polar(1.0, rng.uniform(0.0, 6.28));
    check_gate(Gate::diag(qs, d), n, 41);
  }
}

// ---- structural invariants ---------------------------------------------------

TEST(KernelInvariants, NormPreservedByLongRandomCircuit) {
  const unsigned n = 10;
  StateVector<double> sv(n);
  Xoshiro256 rng(77);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<unsigned>(rng.uniform_int(n));
    auto b = static_cast<unsigned>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    switch (rng.uniform_int(4)) {
      case 0: apply_gate(sv, Gate::h(a)); break;
      case 1: apply_gate(sv, Gate::t(a)); break;
      case 2: apply_gate(sv, Gate::cx(a, b)); break;
      case 3:
        apply_gate(sv, Gate::u2q(a, b, Matrix::random_unitary(4, rng)));
        break;
    }
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10);
}

TEST(KernelInvariants, HTwiceIsIdentity) {
  const unsigned n = 6;
  for (unsigned t = 0; t < n; ++t) {
    StateVector<double> sv(n);
    std::vector<qc::cplx> ref;
    random_state(n, sv, ref, 3000 + t);
    apply_h(sv.data(), n, t, sv.pool());
    apply_h(sv.data(), n, t, sv.pool());
    const auto got = sv.to_vector();
    for (std::uint64_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(std::abs(got[i] - ref[i]), 0.0, 1e-12);
  }
}

TEST(KernelInvariants, CxDecomposesSwap) {
  // SWAP = CX(a,b) CX(b,a) CX(a,b).
  const unsigned n = 5, a = 1, b = 3;
  StateVector<double> sv(n);
  std::vector<qc::cplx> ref;
  random_state(n, sv, ref, 4000);
  apply_gate(sv, Gate::cx(a, b));
  apply_gate(sv, Gate::cx(b, a));
  apply_gate(sv, Gate::cx(a, b));
  qc::dense::apply_gate(ref, Gate::swap(a, b), n);
  const auto got = sv.to_vector();
  for (std::uint64_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - ref[i]), 0.0, 1e-12);
}

TEST(KernelInvariants, FloatKernelsTrackDoubleKernels) {
  const unsigned n = 8;
  StateVector<float> svf(n);
  StateVector<double> svd(n);
  Xoshiro256 rng(88);
  for (int i = 0; i < 40; ++i) {
    const auto a = static_cast<unsigned>(rng.uniform_int(n));
    auto b = static_cast<unsigned>(rng.uniform_int(n - 1));
    if (b >= a) ++b;
    const Gate g =
        (i % 3 == 0) ? Gate::cx(a, b)
                     : (i % 3 == 1 ? Gate::h(a) : Gate::rz(a, 0.3));
    apply_gate(svf, g);
    apply_gate(svd, g);
  }
  const auto f = svf.to_vector();
  const auto d = svd.to_vector();
  for (std::uint64_t i = 0; i < f.size(); ++i)
    EXPECT_NEAR(std::abs(f[i] - d[i]), 0.0, 1e-5);
}

TEST(KernelInvariants, MultithreadedMatchesSingleThreaded) {
  const unsigned n = 10;
  ThreadPool pool1(1), pool4(4);
  StateVector<double> a(n, &pool1), b(n, &pool4);
  std::vector<qc::cplx> init;
  {
    StateVector<double> tmp(n, &pool1);
    random_state(n, tmp, init, 555);
  }
  a.set_state(init);
  b.set_state(init);
  for (unsigned t = 0; t < n; ++t) {
    apply_h(a.data(), n, t, pool1);
    apply_h(b.data(), n, t, pool4);
    apply_gate(a, Gate::cx(t, (t + 1) % n));
    apply_gate(b, Gate::cx(t, (t + 1) % n));
  }
  const auto va = a.to_vector();
  const auto vb = b.to_vector();
  for (std::uint64_t i = 0; i < va.size(); ++i)
    EXPECT_EQ(va[i], vb[i]) << "thread count must not change results at all";
}

// ---- block-local kernel dispatch (sv/kernels.hpp, blocked engine) --------

TEST(BlockKernels, ClassifyGateCoversEveryKind) {
  const struct {
    Gate g;
    KernelClass want;
  } cases[] = {
      {Gate::i(0), KernelClass::Nop},
      {Gate::barrier(), KernelClass::Nop},
      {Gate::x(1), KernelClass::PermX},
      {Gate::y(0), KernelClass::PermY},
      {Gate::h(0), KernelClass::Hadamard},
      {Gate::z(0), KernelClass::Diag1},
      {Gate::s(0), KernelClass::Diag1},
      {Gate::tdg(0), KernelClass::Diag1},
      {Gate::p(0, 0.2), KernelClass::Diag1},
      {Gate::rz(0, 0.3), KernelClass::Diag1},
      {Gate::sx(0), KernelClass::Matrix1},
      {Gate::rx(0, 0.2), KernelClass::Matrix1},
      {Gate::u(0, 0.1, 0.2, 0.3), KernelClass::Matrix1},
      {Gate::cx(0, 1), KernelClass::Mcx},
      {Gate::ccx(0, 1, 2), KernelClass::Mcx},
      {Gate::mcx({0, 1, 2}, 3), KernelClass::Mcx},
      {Gate::cz(0, 1), KernelClass::McPhase},
      {Gate::cp(0, 1, 0.2), KernelClass::McPhase},
      {Gate::ccz(0, 1, 2), KernelClass::McPhase},
      {Gate::mcp({0, 1}, 2, 0.4), KernelClass::McPhase},
      {Gate::crz(0, 1, 0.3), KernelClass::CtrlDiag1},
      {Gate::cy(0, 1), KernelClass::CtrlMatrix1},
      {Gate::ch(0, 1), KernelClass::CtrlMatrix1},
      {Gate::crx(0, 1, 0.3), KernelClass::CtrlMatrix1},
      {Gate::cry(0, 1, 0.3), KernelClass::CtrlMatrix1},
      {Gate::swap(0, 1), KernelClass::PermSwap},
      {Gate::rzz(0, 1, 0.4), KernelClass::Diag2},
      {Gate::iswap(0, 1), KernelClass::Matrix2},
      {Gate::rxx(0, 1, 0.4), KernelClass::Matrix2},
      {Gate::cswap(0, 1, 2), KernelClass::MatrixK},
      {Gate::diag({0, 1}, {1.0, 1.0, 1.0, qc::cplx(0.0, 1.0)}),
       KernelClass::DiagK},
      {Gate::unitary({0}, Gate::h(0).matrix()), KernelClass::Matrix1},
      {Gate::unitary({0, 1}, Gate::cx(0, 1).matrix()), KernelClass::Matrix2},
      {Gate::unitary({0, 1, 2}, Gate::ccx(0, 1, 2).matrix()),
       KernelClass::MatrixK},
      {Gate::measure(0, 0), KernelClass::Unsupported},
      {Gate::reset(0), KernelClass::Unsupported},
  };
  for (const auto& c : cases)
    EXPECT_EQ(classify_gate(c.g), c.want) << c.g.to_string();
}

TEST(BlockKernels, DispatchTableIsFullyPopulated) {
  const auto& table = block_kernel_table<double>();
  ASSERT_EQ(table.size(), kNumKernelClasses);
  for (std::size_t i = 0; i < kNumKernelClasses; ++i) {
    EXPECT_NE(table[i], nullptr) << "class index " << i;
    EXPECT_STRNE(kernel_class_name(static_cast<KernelClass>(i)), "?");
  }
}

TEST(BlockKernels, PrepareGateRejectsNonUnitary) {
  EXPECT_THROW(prepare_gate<double>(Gate::measure(0, 0)), Error);
}

TEST(BlockKernels, BlockApplicationMatchesWholeStateKernels) {
  // With block_qubits == n the register is one block, so every specialized
  // block kernel must reproduce the whole-state dispatcher bit-for-bit.
  const unsigned n = 5;
  const Gate gates[] = {
      Gate::x(2),        Gate::y(1),
      Gate::h(0),        Gate::z(3),
      Gate::t(4),        Gate::rz(2, 0.7),
      Gate::sx(1),       Gate::u(3, 0.1, 0.2, 0.3),
      Gate::cx(0, 4),    Gate::ccx(1, 3, 0),
      Gate::cz(2, 4),    Gate::cp(0, 3, 0.5),
      Gate::ccz(0, 1, 2), Gate::crz(4, 1, 0.6),
      Gate::cy(3, 0),    Gate::ch(1, 4),
      Gate::crx(2, 0, 0.4), Gate::swap(1, 3),
      Gate::rzz(0, 2, 0.8), Gate::iswap(2, 4),
      Gate::rxx(0, 1, 0.3), Gate::cswap(4, 0, 2),
      Gate::diag({1, 3}, {1.0, qc::cplx(0.0, 1.0), -1.0, 1.0}),
      Gate::unitary({0, 2, 4}, Gate::ccx(0, 1, 2).matrix()),
  };
  for (const Gate& g : gates) {
    StateVector<double> via_block(n), via_dispatch(n);
    std::vector<qc::cplx> init;
    random_state(n, via_block, init, 0xb10c + g.qubits.size());
    via_dispatch.set_state(init);

    const PreparedGate<double> pg = prepare_gate<double>(g);
    apply_gate_in_block(via_block.data(), n, pg);
    apply_gate(via_dispatch, g);

    const auto got = via_block.to_vector();
    const auto want = via_dispatch.to_vector();
    double dist = 0.0;
    for (std::uint64_t i = 0; i < want.size(); ++i)
      dist = std::max(dist, std::abs(got[i] - want[i]));
    EXPECT_LT(dist, 1e-12) << g.to_string();
  }
}

TEST(BlockKernels, SubBlockApplicationActsIndependentlyPerBlock) {
  // Applying a prepared gate to each aligned 2^b block must equal the
  // whole-state gate when all operands are below b.
  const unsigned n = 6, b = 3;
  const Gate g = Gate::cx(0, 2);
  StateVector<double> blocked(n), whole(n);
  std::vector<qc::cplx> init;
  random_state(n, blocked, init, 99);
  whole.set_state(init);

  const PreparedGate<double> pg = prepare_gate<double>(g);
  for (std::uint64_t blk = 0; blk < pow2(n - b); ++blk)
    apply_gate_in_block(blocked.data() + (blk << b), b, pg);
  apply_gate(whole, g);

  const auto got = blocked.to_vector();
  const auto want = whole.to_vector();
  for (std::uint64_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

}  // namespace
}  // namespace svsim::sv
