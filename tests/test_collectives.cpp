#include "dist/collectives.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace svsim::dist {
namespace {

const InterconnectSpec kTofu = InterconnectSpec::tofu_d();

TEST(Collectives, SingleNodeIsFree) {
  EXPECT_DOUBLE_EQ(broadcast_seconds(1, 1e6, kTofu), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_seconds(1, 1e6, kTofu), 0.0);
  EXPECT_DOUBLE_EQ(allgather_seconds(1, 1e6, kTofu), 0.0);
}

TEST(Collectives, BroadcastScalesLogarithmically) {
  const double t2 = broadcast_seconds(2, 1e6, kTofu);
  const double t4 = broadcast_seconds(4, 1e6, kTofu);
  const double t16 = broadcast_seconds(16, 1e6, kTofu);
  EXPECT_NEAR(t4 / t2, 2.0, 1e-9);
  EXPECT_NEAR(t16 / t2, 4.0, 1e-9);
  // Non-power-of-two rounds up.
  EXPECT_DOUBLE_EQ(broadcast_seconds(5, 1e6, kTofu),
                   broadcast_seconds(8, 1e6, kTofu));
}

TEST(Collectives, AllreducePinnedFormulas) {
  const double a =
      kTofu.latency_seconds + kTofu.software_overhead_seconds;
  const double b = 1.0 / (kTofu.link_bandwidth_gbps * 1e9);
  const double bytes = 4096.0;
  EXPECT_NEAR(allreduce_seconds(8, bytes, kTofu,
                                AllreduceAlgorithm::RecursiveDoubling),
              3.0 * (a + bytes * b), 1e-15);
  EXPECT_NEAR(allreduce_seconds(8, bytes, kTofu, AllreduceAlgorithm::Ring),
              14.0 * (a + bytes / 8.0 * b), 1e-15);
}

TEST(Collectives, AutoPicksDoublingForSmallRingForLarge) {
  const std::uint64_t nodes = 64;
  const double small = 64.0;          // bytes: latency dominates
  const double large = 256e6;         // bytes: bandwidth dominates
  EXPECT_DOUBLE_EQ(
      allreduce_seconds(nodes, small, kTofu, AllreduceAlgorithm::Auto),
      allreduce_seconds(nodes, small, kTofu,
                        AllreduceAlgorithm::RecursiveDoubling));
  EXPECT_DOUBLE_EQ(
      allreduce_seconds(nodes, large, kTofu, AllreduceAlgorithm::Auto),
      allreduce_seconds(nodes, large, kTofu, AllreduceAlgorithm::Ring));
}

TEST(Collectives, RingBeatsDoublingAsymptotically) {
  // For huge messages ring approaches 2mβ regardless of P; doubling pays
  // log2(P) full messages.
  const double m = 1e9;
  const double ring =
      allreduce_seconds(256, m, kTofu, AllreduceAlgorithm::Ring);
  const double dbl = allreduce_seconds(
      256, m, kTofu, AllreduceAlgorithm::RecursiveDoubling);
  EXPECT_GT(dbl / ring, 3.0);
}

TEST(Collectives, AllgatherLinearInNodes) {
  const double t2 = allgather_seconds(2, 1e5, kTofu);
  const double t9 = allgather_seconds(9, 1e5, kTofu);
  EXPECT_NEAR(t9 / t2, 8.0, 1e-9);
}

TEST(Collectives, ExpectationAllreduceTiny) {
  // A handful of Pauli partials is latency-bound: microseconds even at
  // thousands of nodes.
  const double t = expectation_allreduce_seconds(1024, 50, kTofu);
  EXPECT_LT(t, 1e-4);
  EXPECT_GT(t, 0.0);
}

TEST(Collectives, ValidatesNodeCount) {
  EXPECT_THROW(broadcast_seconds(0, 1.0, kTofu), Error);
  EXPECT_THROW(allreduce_seconds(0, 1.0, kTofu), Error);
}

}  // namespace
}  // namespace svsim::dist
