#include "common/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace svsim {
namespace {

TEST(StaticPartition, CoversRangeExactly) {
  for (std::uint64_t count : {0ull, 1ull, 7ull, 100ull, 1024ull}) {
    for (unsigned workers : {1u, 2u, 3u, 7u, 16u}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (unsigned w = 0; w < workers; ++w) {
        const Partition p = static_partition(count, workers, w);
        EXPECT_EQ(p.begin, prev_end);
        EXPECT_LE(p.begin, p.end);
        covered += p.end - p.begin;
        prev_end = p.end;
      }
      EXPECT_EQ(covered, count);
      EXPECT_EQ(prev_end, count);
    }
  }
}

TEST(StaticPartition, BalancedWithinOne) {
  const std::uint64_t count = 1003;
  const unsigned workers = 7;
  std::uint64_t lo = count, hi = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const Partition p = static_partition(count, workers, w);
    lo = std::min(lo, p.end - p.begin);
    hi = std::max(hi, p.end - p.begin);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  const std::uint64_t count = 100000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(
      count,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*serial_cutoff=*/0);
  for (std::uint64_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  unsigned worker_seen = 99;
  pool.parallel_for(
      10,
      [&](unsigned w, std::uint64_t, std::uint64_t) { worker_seen = w; },
      /*serial_cutoff=*/100);
  EXPECT_EQ(worker_seen, 0u);  // ran on the caller
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](unsigned, std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReduceSumsCorrectly) {
  ThreadPool pool(4);
  const std::uint64_t count = 1 << 16;
  const double total = pool.parallel_reduce(
      count,
      [](unsigned, std::uint64_t b, std::uint64_t e) {
        double acc = 0.0;
        for (std::uint64_t i = b; i < e; ++i) acc += static_cast<double>(i);
        return acc;
      },
      /*serial_cutoff=*/0);
  const double expect =
      static_cast<double>(count - 1) * static_cast<double>(count) / 2.0;
  EXPECT_DOUBLE_EQ(total, expect);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(
        1000,
        [&](unsigned, std::uint64_t b, std::uint64_t e) {
          sum.fetch_add(e - b);
        },
        /*serial_cutoff=*/0);
  }
  EXPECT_EQ(sum.load(), 100000u);
}

TEST(ThreadPool, NestedCallsRunSequentially) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> inner_total{0};
  pool.parallel_for(
      1000,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        // Nested region must not deadlock; it runs inline.
        pool.parallel_for(
            e - b,
            [&](unsigned, std::uint64_t ib, std::uint64_t ie) {
              inner_total.fetch_add(ie - ib);
            },
            /*serial_cutoff=*/0);
      },
      /*serial_cutoff=*/0);
  EXPECT_EQ(inner_total.load(), 1000u);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  double sum = pool.parallel_reduce(
      100, [](unsigned, std::uint64_t b, std::uint64_t e) {
        return static_cast<double>(e - b);
      });
  EXPECT_DOUBLE_EQ(sum, 100.0);
}

TEST(ThreadPool, SeededRngsAreDeterministicPerWorker) {
  ThreadPool pool(4);
  pool.seed_rngs(2024);
  std::vector<std::uint64_t> first;
  for (unsigned w = 0; w < 4; ++w) first.push_back(pool.rng(w)());
  pool.seed_rngs(2024);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(pool.rng(w)(), first[w]);
  // Distinct workers get distinct streams.
  EXPECT_NE(first[0], first[1]);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

// ---- thread pinning (NUMA/CMG affinity) ----------------------------------

TEST(PinPolicy, CompactFillsCoresInOrder) {
  PinPolicy p;
  p.mode = PinPolicy::Mode::Compact;
  p.num_cores = 8;
  for (unsigned w = 0; w < 8; ++w) EXPECT_EQ(pin_cpu_for_worker(p, w, 8), w);
  // Oversubscription wraps.
  EXPECT_EQ(pin_cpu_for_worker(p, 8, 16), 0u);
  EXPECT_EQ(pin_cpu_for_worker(p, 9, 16), 1u);
}

TEST(PinPolicy, ScatterRoundRobinsAcrossDomains) {
  // 8 cores in 2 domains (cores 0-3 and 4-7): consecutive workers must
  // alternate domains — the first-touch pages of adjacent partitions land
  // on alternating memory controllers.
  PinPolicy p;
  p.mode = PinPolicy::Mode::Scatter;
  p.num_domains = 2;
  p.num_cores = 8;
  EXPECT_EQ(pin_cpu_for_worker(p, 0, 8), 0u);
  EXPECT_EQ(pin_cpu_for_worker(p, 1, 8), 4u);
  EXPECT_EQ(pin_cpu_for_worker(p, 2, 8), 1u);
  EXPECT_EQ(pin_cpu_for_worker(p, 3, 8), 5u);
  // 4 CMG-like domains.
  p.num_domains = 4;
  EXPECT_EQ(pin_cpu_for_worker(p, 0, 8), 0u);
  EXPECT_EQ(pin_cpu_for_worker(p, 1, 8), 2u);
  EXPECT_EQ(pin_cpu_for_worker(p, 2, 8), 4u);
  EXPECT_EQ(pin_cpu_for_worker(p, 3, 8), 6u);
  EXPECT_EQ(pin_cpu_for_worker(p, 4, 8), 1u);
}

TEST(PinPolicy, ScatterDegeneratesToCompactWhenDomainsExceedCores) {
  PinPolicy p;
  p.mode = PinPolicy::Mode::Scatter;
  p.num_domains = 16;
  p.num_cores = 4;
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(pin_cpu_for_worker(p, w, 4), w);
}

TEST(PinPolicy, ParsesEnvSpelling) {
  ASSERT_EQ(setenv("SVSIM_PIN", "compact", 1), 0);
  EXPECT_EQ(pin_policy_from_env().mode, PinPolicy::Mode::Compact);

  ASSERT_EQ(setenv("SVSIM_PIN", "scatter", 1), 0);
  PinPolicy p = pin_policy_from_env();
  EXPECT_EQ(p.mode, PinPolicy::Mode::Scatter);
  EXPECT_EQ(p.num_domains, 2u);

  ASSERT_EQ(setenv("SVSIM_PIN", "scatter:4", 1), 0);
  p = pin_policy_from_env();
  EXPECT_EQ(p.mode, PinPolicy::Mode::Scatter);
  EXPECT_EQ(p.num_domains, 4u);

  ASSERT_EQ(setenv("SVSIM_PIN", "nonsense", 1), 0);
  EXPECT_EQ(pin_policy_from_env().mode, PinPolicy::Mode::None);

  ASSERT_EQ(unsetenv("SVSIM_PIN"), 0);
  EXPECT_EQ(pin_policy_from_env().mode, PinPolicy::Mode::None);
}

TEST(ThreadPool, PinThreadsIsInertWithoutPolicy) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pin_threads(PinPolicy{}));
  EXPECT_FALSE(pool.pinned());
}

TEST(ThreadPool, PinnedPoolStillComputesCorrectly) {
  ThreadPool pool(2);
  PinPolicy p;
  p.mode = PinPolicy::Mode::Compact;
#if defined(__linux__)
  EXPECT_TRUE(pool.pin_threads(p));
  EXPECT_TRUE(pool.pinned());
#else
  pool.pin_threads(p);  // must not crash; reports false without an API
#endif
  const double sum = pool.parallel_reduce(
      1000, [](unsigned, std::uint64_t b, std::uint64_t e) {
        return static_cast<double>(e - b);
      });
  EXPECT_DOUBLE_EQ(sum, 1000.0);
}

}  // namespace
}  // namespace svsim
