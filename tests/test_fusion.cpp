#include "sv/fusion.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;
using qc::Gate;
using qc::GateKind;

double circuit_equivalence_error(const Circuit& a, const Circuit& b) {
  return qc::dense::circuit_unitary(a).distance(qc::dense::circuit_unitary(b));
}

TEST(Fusion, SingleGatePassesThroughUnchanged) {
  Circuit c(3);
  c.cx(0, 1);
  const Circuit f = fuse(c, {});
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.gate(0).kind, GateKind::CX);
}

TEST(Fusion, MergesSingleQubitChain) {
  Circuit c(2);
  c.h(0).t(0).s(0).h(0);
  FusionOptions opts;
  opts.max_width = 2;
  const Circuit f = fuse(c, opts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.gate(0).kind, GateKind::UNITARY);
  EXPECT_EQ(f.gate(0).num_qubits(), 1u);
  EXPECT_LT(circuit_equivalence_error(c, f), 1e-12);
}

TEST(Fusion, RespectsMaxWidth) {
  Circuit c(6);
  for (unsigned q = 0; q + 1 < 6; ++q) c.cx(q, q + 1);
  FusionOptions opts;
  opts.max_width = 3;
  const Circuit f = fuse(c, opts);
  for (const auto& g : f.gates())
    EXPECT_LE(g.num_qubits(), 3u) << g.to_string();
  EXPECT_LT(circuit_equivalence_error(c, f), 1e-12);
}

TEST(Fusion, DiagonalRunBecomesDiagGate) {
  Circuit c(3);
  c.t(0).cz(0, 1).rz(1, 0.4).cp(1, 2, 0.7).rzz(0, 2, 0.9);
  FusionOptions opts;
  opts.max_width = 3;
  const Circuit f = fuse(c, opts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.gate(0).kind, GateKind::DIAG);
  EXPECT_LT(circuit_equivalence_error(c, f), 1e-12);
}

TEST(Fusion, DiagonalPreferenceCanBeDisabled) {
  Circuit c(2);
  c.t(0).cz(0, 1);
  FusionOptions opts;
  opts.prefer_diagonal = false;
  const Circuit f = fuse(c, opts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.gate(0).kind, GateKind::UNITARY);
}

TEST(Fusion, BarrierFlushesGroup) {
  Circuit c(2);
  c.h(0).barrier().h(0);
  const Circuit f = fuse(c, {});
  // Two H gates must not merge across the barrier.
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f.gate(1).kind, GateKind::BARRIER);
}

TEST(Fusion, MeasureFlushesAndIsPreserved) {
  Circuit c(2);
  c.h(0).t(0).measure(0, 0).h(0);
  const Circuit f = fuse(c, {});
  bool has_measure = false;
  for (const auto& g : f.gates()) has_measure |= g.kind == GateKind::MEASURE;
  EXPECT_TRUE(has_measure);
}

TEST(Fusion, WideGatesPassThrough) {
  Circuit c(5);
  c.append(Gate::mcx({0, 1, 2, 3}, 4));
  FusionOptions opts;
  opts.max_width = 3;
  const Circuit f = fuse(c, opts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.gate(0).kind, GateKind::MCX);
}

TEST(Fusion, ReducesGateCountOnQft) {
  const Circuit c = qc::qft(6);
  FusionOptions opts;
  opts.max_width = 3;
  const Circuit f = fuse(c, opts);
  EXPECT_LT(f.size(), c.size() / 2);
  EXPECT_LT(circuit_equivalence_error(c, f), 1e-10);
}

class FusionWidthEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(FusionWidthEquivalence, RandomCircuitsEquivalentAtEveryWidth) {
  const unsigned width = GetParam();
  for (std::uint64_t seed : {11ull, 22ull}) {
    const Circuit c = qc::random_clifford_t(5, 60, seed);
    FusionOptions opts;
    opts.max_width = width;
    const Circuit f = fuse(c, opts);
    EXPECT_LT(circuit_equivalence_error(c, f), 1e-10)
        << "width=" << width << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FusionWidthEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Fusion, QuantumVolumeCircuitEquivalence) {
  const Circuit c = qc::random_quantum_volume(6, 4, 9);
  FusionOptions opts;
  opts.max_width = 4;
  const Circuit f = fuse(c, opts);
  const auto a = qc::dense::run(c);
  const auto b = qc::dense::run(f);
  EXPECT_LT(qc::dense::distance(a, b), 1e-10);
  EXPECT_LE(f.size(), c.size());
}

TEST(Fusion, InvalidWidthRejected) {
  Circuit c(2);
  c.h(0);
  FusionOptions opts;
  opts.max_width = 0;
  EXPECT_THROW(fuse(c, opts), Error);
  opts.max_width = 9;
  EXPECT_THROW(fuse(c, opts), Error);
}

TEST(Fusion, IdentityGatesAreDropped) {
  Circuit c(2);
  c.h(0).i(1).i(0).h(0);
  const Circuit f = fuse(c, {});
  for (const auto& g : f.gates()) EXPECT_NE(g.kind, GateKind::I);
  EXPECT_LT(circuit_equivalence_error(c, f), 1e-12);
}

}  // namespace
}  // namespace svsim::sv
