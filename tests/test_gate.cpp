#include "qc/gate.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace svsim::qc {
namespace {

constexpr double kTol = 1e-12;

TEST(GateMatrices, AllNamedGatesAreUnitary) {
  Xoshiro256 rng(1);
  const std::vector<Gate> gates = {
      Gate::i(0), Gate::x(0), Gate::y(0), Gate::z(0), Gate::h(0), Gate::s(0),
      Gate::sdg(0), Gate::t(0), Gate::tdg(0), Gate::sx(0), Gate::sxdg(0),
      Gate::rx(0, 0.3), Gate::ry(0, 0.4), Gate::rz(0, 0.5), Gate::p(0, 0.6),
      Gate::u(0, 0.1, 0.2, 0.3), Gate::cx(0, 1), Gate::cy(0, 1),
      Gate::cz(0, 1), Gate::ch(0, 1), Gate::cp(0, 1, 0.7),
      Gate::crx(0, 1, 0.8), Gate::cry(0, 1, 0.9), Gate::crz(0, 1, 1.0),
      Gate::swap(0, 1), Gate::iswap(0, 1), Gate::rxx(0, 1, 0.4),
      Gate::ryy(0, 1, 0.5), Gate::rzz(0, 1, 0.6),
      Gate::u2q(0, 1, Matrix::random_unitary(4, rng)), Gate::ccx(0, 1, 2),
      Gate::ccz(0, 1, 2), Gate::cswap(0, 1, 2),
      Gate::mcx({0, 1, 2}, 3), Gate::mcp({0, 1}, 2, 0.4),
      Gate::diag({0, 1}, {1.0, cplx{0, 1}, -1.0, cplx{0, -1}}),
      Gate::unitary({0, 1, 2}, Matrix::random_unitary(8, rng)),
  };
  for (const auto& g : gates) {
    EXPECT_TRUE(g.matrix().is_unitary(1e-10)) << g.to_string();
    EXPECT_EQ(g.matrix().dim(), pow2(g.num_qubits())) << g.to_string();
  }
}

TEST(GateMatrices, PauliAlgebra) {
  const Matrix x = mat::X(), y = mat::Y(), z = mat::Z();
  // XY = iZ
  EXPECT_LT((x * y).distance(z * cplx{0, 1}), kTol);
  // X^2 = Y^2 = Z^2 = I
  EXPECT_LT((x * x).distance(Matrix::identity(2)), kTol);
  EXPECT_LT((y * y).distance(Matrix::identity(2)), kTol);
  EXPECT_LT((z * z).distance(Matrix::identity(2)), kTol);
}

TEST(GateMatrices, HadamardRelations) {
  const Matrix h = mat::H();
  EXPECT_LT((h * h).distance(Matrix::identity(2)), kTol);
  // HXH = Z
  EXPECT_LT((h * mat::X() * h).distance(mat::Z()), kTol);
}

TEST(GateMatrices, PhaseTowers) {
  // S^2 = Z, T^2 = S, T^8 = I
  EXPECT_LT((mat::S() * mat::S()).distance(mat::Z()), kTol);
  EXPECT_LT((mat::T() * mat::T()).distance(mat::S()), kTol);
  Matrix t8 = Matrix::identity(2);
  for (int i = 0; i < 8; ++i) t8 = t8 * mat::T();
  EXPECT_LT(t8.distance(Matrix::identity(2)), kTol);
}

TEST(GateMatrices, SxSquaredIsX) {
  EXPECT_LT((mat::SX() * mat::SX()).distance(mat::X()), kTol);
  EXPECT_LT((mat::SX() * mat::SXdg()).distance(Matrix::identity(2)), kTol);
}

TEST(GateMatrices, RotationsAtSpecialAngles) {
  // RZ(π) = -iZ (equal up to phase to Z).
  EXPECT_LT(mat::RZ(std::numbers::pi).distance_up_to_phase(mat::Z()), kTol);
  EXPECT_LT(mat::RX(std::numbers::pi).distance_up_to_phase(mat::X()), kTol);
  EXPECT_LT(mat::RY(std::numbers::pi).distance_up_to_phase(mat::Y()), kTol);
  // P(π/2) = S exactly.
  EXPECT_LT(mat::P(std::numbers::pi / 2).distance(mat::S()), kTol);
}

TEST(GateMatrices, UCoversNamedGates) {
  // U(π/2, 0, π) = H.
  EXPECT_LT(mat::U(std::numbers::pi / 2, 0, std::numbers::pi).distance(mat::H()),
            kTol);
  // U(0, 0, λ) = P(λ).
  EXPECT_LT(mat::U(0, 0, 0.37).distance(mat::P(0.37)), kTol);
}

TEST(GateMatrices, CxMatrixConvention) {
  // qubits = {control=0, target=1}; basis index bit0 = control.
  // CX maps |c=1,t=0> (index 1) -> |c=1,t=1> (index 3).
  const Matrix cx = Gate::cx(0, 1).matrix();
  EXPECT_DOUBLE_EQ(cx(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(cx(3, 1).real(), 1.0);
  EXPECT_DOUBLE_EQ(cx(1, 3).real(), 1.0);
  EXPECT_DOUBLE_EQ(cx(2, 2).real(), 1.0);
  EXPECT_DOUBLE_EQ(cx(1, 1).real(), 0.0);
}

TEST(GateMatrices, SwapMatrix) {
  const Matrix sw = Gate::swap(0, 1).matrix();
  // |01> (index 1) <-> |10> (index 2)
  EXPECT_DOUBLE_EQ(sw(2, 1).real(), 1.0);
  EXPECT_DOUBLE_EQ(sw(1, 2).real(), 1.0);
  EXPECT_DOUBLE_EQ(sw(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(sw(3, 3).real(), 1.0);
}

TEST(GateMatrices, RzzIsDiagonalWithCorrectPhases) {
  const double theta = 0.7;
  const Matrix m = Gate::rzz(0, 1, theta).matrix();
  EXPECT_TRUE(m.is_diagonal());
  // ZZ eigenvalue +1 on |00>,|11> -> phase e^{-iθ/2}.
  EXPECT_NEAR(std::arg(m(0, 0)), -theta / 2, kTol);
  EXPECT_NEAR(std::arg(m(3, 3)), -theta / 2, kTol);
  EXPECT_NEAR(std::arg(m(1, 1)), theta / 2, kTol);
}

TEST(GateMatrices, ControlledMatrixEmbedding) {
  // controlled_matrix(X, 1) must equal the CX matrix.
  EXPECT_LT(controlled_matrix(mat::X(), 1).distance(Gate::cx(0, 1).matrix()),
            kTol);
  // Two controls: CCX.
  EXPECT_LT(
      controlled_matrix(mat::X(), 2).distance(Gate::ccx(0, 1, 2).matrix()),
      kTol);
}

TEST(GateInverse, InverseGivesIdentityProduct) {
  Xoshiro256 rng(3);
  const std::vector<Gate> gates = {
      Gate::x(0), Gate::h(0), Gate::s(0), Gate::t(0), Gate::sx(0),
      Gate::rx(0, 0.3), Gate::u(0, 0.4, 0.5, 0.6), Gate::cx(0, 1),
      Gate::cp(0, 1, 0.7), Gate::iswap(0, 1), Gate::rzz(0, 1, 0.5),
      Gate::u2q(0, 1, Matrix::random_unitary(4, rng)), Gate::ccx(0, 1, 2),
      Gate::mcp({0, 1}, 2, 0.9),
      Gate::diag({0, 1}, {1.0, cplx{0, 1}, -1.0, cplx{0, -1}}),
      Gate::unitary({0, 1}, Matrix::random_unitary(4, rng)),
  };
  for (const auto& g : gates) {
    const Matrix prod = g.inverse().matrix() * g.matrix();
    EXPECT_LT(prod.distance(Matrix::identity(prod.dim())), 1e-10)
        << g.to_string();
  }
}

TEST(GateInverse, UInverseParameters) {
  const Gate g = Gate::u(0, 0.1, 0.2, 0.3);
  const Gate inv = g.inverse();
  EXPECT_DOUBLE_EQ(inv.params[0], -0.1);
  EXPECT_DOUBLE_EQ(inv.params[1], -0.3);
  EXPECT_DOUBLE_EQ(inv.params[2], -0.2);
}

TEST(GateStructure, ControlsAndTargets) {
  const Gate ccx = Gate::ccx(3, 5, 1);
  EXPECT_EQ(ccx.num_controls(), 2u);
  EXPECT_EQ(ccx.controls(), (std::vector<unsigned>{3, 5}));
  EXPECT_EQ(ccx.targets(), (std::vector<unsigned>{1}));

  const Gate mcx = Gate::mcx({0, 1, 2, 3}, 7);
  EXPECT_EQ(mcx.num_controls(), 4u);
  EXPECT_EQ(mcx.targets(), (std::vector<unsigned>{7}));

  const Gate sw = Gate::swap(2, 4);
  EXPECT_EQ(sw.num_controls(), 0u);
  EXPECT_EQ(sw.targets().size(), 2u);
}

TEST(GateStructure, DiagonalClassification) {
  EXPECT_TRUE(Gate::z(0).is_diagonal());
  EXPECT_TRUE(Gate::rz(0, 0.1).is_diagonal());
  EXPECT_TRUE(Gate::cp(0, 1, 0.1).is_diagonal());
  EXPECT_TRUE(Gate::rzz(0, 1, 0.1).is_diagonal());
  EXPECT_TRUE(Gate::ccz(0, 1, 2).is_diagonal());
  EXPECT_FALSE(Gate::x(0).is_diagonal());
  EXPECT_FALSE(Gate::h(0).is_diagonal());
  EXPECT_FALSE(Gate::cx(0, 1).is_diagonal());
  EXPECT_FALSE(Gate::swap(0, 1).is_diagonal());
}

TEST(GateStructure, NonUnitaryOps) {
  EXPECT_FALSE(Gate::measure(0, 0).is_unitary_op());
  EXPECT_FALSE(Gate::reset(0).is_unitary_op());
  EXPECT_FALSE(Gate::barrier().is_unitary_op());
  EXPECT_TRUE(Gate::x(0).is_unitary_op());
  EXPECT_THROW(Gate::measure(0, 0).matrix(), Error);
  EXPECT_THROW(Gate::reset(0).inverse(), Error);
}

TEST(GateStructure, DuplicateOperandsRejected) {
  EXPECT_THROW(Gate::cx(1, 1), Error);
  EXPECT_THROW(Gate::ccx(0, 2, 2), Error);
  EXPECT_THROW(Gate::swap(3, 3), Error);
}

TEST(GateStructure, PayloadValidation) {
  EXPECT_THROW(Gate::u2q(0, 1, Matrix::identity(2)), Error);  // wrong dim
  EXPECT_THROW(Gate::diag({0, 1}, {1.0, 1.0}), Error);        // wrong count
  EXPECT_THROW(Gate::unitary({0}, Matrix::identity(4)), Error);
  EXPECT_THROW(Gate::mcx({}, 0), Error);
}

TEST(GateStructure, ToStringFormat) {
  EXPECT_EQ(Gate::cx(0, 3).to_string(), "cx q[0],q[3]");
  EXPECT_EQ(Gate::rz(2, 0.5).to_string(), "rz(0.5) q[2]");
  EXPECT_EQ(Gate::measure(1, 4).to_string(), "measure q[1] -> c[4]");
}

TEST(GateStructure, TargetMatrixForControlledKinds) {
  EXPECT_LT(Gate::cx(0, 1).target_matrix().distance(mat::X()), kTol);
  EXPECT_LT(Gate::ccz(0, 1, 2).target_matrix().distance(mat::Z()), kTol);
  EXPECT_LT(Gate::crz(0, 1, 0.4).target_matrix().distance(mat::RZ(0.4)), kTol);
  EXPECT_THROW(Gate::swap(0, 1).target_matrix(), Error);
}

class MCPParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MCPParamTest, MCPEqualsEmbeddedPhase) {
  const unsigned nc = GetParam();
  std::vector<unsigned> controls(nc);
  for (unsigned i = 0; i < nc; ++i) controls[i] = i;
  const Gate g = Gate::mcp(controls, nc, 0.8);
  const Matrix expect = controlled_matrix(mat::P(0.8), nc);
  EXPECT_LT(g.matrix().distance(expect), kTol);
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, MCPParamTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace svsim::qc
