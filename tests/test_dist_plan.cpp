#include "dist/dist_plan.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "qc/library.hpp"

namespace svsim::dist {
namespace {

using qc::Circuit;
using qc::Gate;

constexpr unsigned kN = 10;   // total qubits
constexpr unsigned kD = 3;    // 8 nodes, local = 7
const double kPartitionBytes = 128.0 * 16.0;  // 2^7 amps x 16 B

TEST(DistPlan, ValidatesArguments) {
  Circuit c(4);
  c.h(0);
  EXPECT_THROW(plan_distribution(c, 4, CommScheduler::Naive), Error);
  EXPECT_THROW(plan_distribution(c, 3, CommScheduler::Naive), Error);
  EXPECT_NO_THROW(plan_distribution(c, 2, CommScheduler::Naive));
}

TEST(DistPlan, RejectsMeasurement) {
  Circuit c(kN);
  c.h(0).measure(0, 0);
  EXPECT_THROW(plan_distribution(c, kD, CommScheduler::Naive), Error);
}

TEST(DistPlan, LocalGatesNeverCommunicate) {
  Circuit c(kN);
  c.h(0).cx(1, 2).rz(3, 0.5).swap(4, 5).ccx(0, 1, 6);
  for (auto sched : {CommScheduler::Naive, CommScheduler::Remap}) {
    const DistPlan plan = plan_distribution(c, kD, sched);
    EXPECT_EQ(plan.num_exchanges, 0u) << scheduler_name(sched);
    EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, 0.0);
  }
}

TEST(DistPlan, DiagonalGatesOnNodeQubitsAreFree) {
  Circuit c(kN);
  // Qubits 7, 8, 9 live in the rank.
  c.z(8).rz(9, 0.4).cp(7, 9, 0.3).cz(0, 8).rzz(7, 8, 0.2);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 0u);
}

TEST(DistPlan, NodeControlIsFree) {
  Circuit c(kN);
  c.cx(8, 2);   // control on node qubit, target local: conditional local X
  c.ccx(7, 9, 3);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 0u);
}

TEST(DistPlan, NonDiagonalNodeTargetCostsFullPartitionExchange) {
  Circuit c(kN);
  c.h(8);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 1u);
  EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, kPartitionBytes);
  EXPECT_EQ(plan.steps.back().exchange_rank_bit, 1);  // slot 8 -> bit 1
}

TEST(DistPlan, LocalControlHalvesExchangeVolume) {
  Circuit c(kN);
  c.cx(2, 8);  // local control, node target
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 1u);
  EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, kPartitionBytes / 2.0);
}

TEST(DistPlan, LocalNodeSwapMovesHalf) {
  Circuit c(kN);
  c.swap(3, 9);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 1u);
  EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, kPartitionBytes / 2.0);
}

TEST(DistPlan, NaivePaysPerGateOnRepeatedNodeTargets) {
  Circuit c(kN);
  for (int i = 0; i < 5; ++i) c.h(9);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Naive);
  EXPECT_EQ(plan.num_exchanges, 5u);
  EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, 5.0 * kPartitionBytes);
}

TEST(DistPlan, RemapPaysOnceForRepeatedNodeTargets) {
  Circuit c(kN);
  for (int i = 0; i < 5; ++i) c.h(9);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Remap);
  EXPECT_EQ(plan.num_exchanges, 1u);
  EXPECT_DOUBLE_EQ(plan.total_exchange_bytes, kPartitionBytes / 2.0);
  // Qubit 9 now lives in a local slot.
  EXPECT_LT(plan.final_slot_of[9], plan.local_qubits);
}

TEST(DistPlan, RemapTracksPermutationConsistently) {
  Circuit c(kN);
  c.h(9).h(8).h(7).h(9).h(8);
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Remap);
  // slot_of must stay a permutation.
  std::vector<bool> seen(kN, false);
  for (unsigned q = 0; q < kN; ++q) {
    EXPECT_LT(plan.final_slot_of[q], kN);
    EXPECT_FALSE(seen[plan.final_slot_of[q]]);
    seen[plan.final_slot_of[q]] = true;
  }
  // 3 remaps only (one per distinct qubit).
  EXPECT_EQ(plan.num_exchanges, 3u);
}

TEST(DistPlan, RemapBeatsNaiveOnQft) {
  const Circuit c = qc::qft(kN);
  const DistPlan naive = plan_distribution(c, kD, CommScheduler::Naive);
  const DistPlan remap = plan_distribution(c, kD, CommScheduler::Remap);
  EXPECT_GT(naive.total_exchange_bytes, 0.0);
  EXPECT_LT(remap.total_exchange_bytes, naive.total_exchange_bytes);
}

TEST(DistPlan, RemapBeladyEvictsFarthestNextUse) {
  // After remapping q9 in, the evicted local qubit must be one not used
  // soon. Build a circuit where q0 is used immediately after.
  Circuit c(kN);
  c.h(9);       // forces remap; q0..q6 occupy local slots
  c.h(0);       // q0 used next -> must NOT have been evicted
  const DistPlan plan = plan_distribution(c, kD, CommScheduler::Remap);
  EXPECT_LT(plan.final_slot_of[0], plan.local_qubits);
}

TEST(DistPlan, ProxyGatesStayInLocalSlotSpace) {
  const Circuit c = qc::qft(kN);
  for (auto sched : {CommScheduler::Naive, CommScheduler::Remap}) {
    const DistPlan plan = plan_distribution(c, kD, sched);
    for (const auto& step : plan.steps) {
      if (!step.local_gate) continue;
      for (unsigned q : step.local_gate->qubits)
        EXPECT_LT(q, plan.local_qubits) << scheduler_name(sched);
    }
  }
}

TEST(DistPlan, ElementBytesScalesVolume) {
  Circuit c(kN);
  c.h(9);
  const DistPlan dp = plan_distribution(c, kD, CommScheduler::Naive, 8);
  const DistPlan sp = plan_distribution(c, kD, CommScheduler::Naive, 4);
  EXPECT_DOUBLE_EQ(sp.total_exchange_bytes, dp.total_exchange_bytes / 2.0);
}

TEST(DistPlan, GhzChainCommunicatesOnlyAtBoundary) {
  // GHZ: H(0) + CX chain. Only CX gates whose *target* is a node qubit
  // exchange; with remap the count collapses further.
  const Circuit c = qc::ghz(kN);
  const DistPlan naive = plan_distribution(c, kD, CommScheduler::Naive);
  // Targets 7, 8, 9 are node qubits: 3 exchanges. cx(6,7) is halved by its
  // local control; cx(7,8) and cx(8,9) have node controls (free) and move a
  // full partition on the participating nodes.
  EXPECT_EQ(naive.num_exchanges, 3u);
  EXPECT_DOUBLE_EQ(naive.total_exchange_bytes, 2.5 * kPartitionBytes);
}

}  // namespace
}  // namespace svsim::dist
