#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/threading.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

namespace svsim::obs {
namespace {

Span make_span(const char* name, std::uint64_t start_ns,
               std::uint64_t dur_ns = 10) {
  Span s;
  std::snprintf(s.name.data(), s.name.size(), "%s", name);
  s.category = SpanCategory::Kernel;
  s.start_ns = start_ns;
  s.duration_ns = dur_ns;
  return s;
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.record(make_span("x", 1));
  tracer.record_span("h", SpanCategory::Kernel, nullptr, 0, 0, 0, 0);
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracer, CollectOrdersByStartTime) {
  Tracer tracer;
  tracer.enable();
  tracer.record(make_span("c", 300));
  tracer.record(make_span("a", 100));
  tracer.record(make_span("b", 200));
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name.data(), "a");
  EXPECT_STREQ(spans[1].name.data(), "b");
  EXPECT_STREQ(spans[2].name.data(), "c");
}

TEST(Tracer, EqualStartTimesKeepRecordOrder) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 5; ++i) tracer.record(make_span("same", 42));
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 5u);
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GT(spans[i].seq, spans[i - 1].seq);
}

TEST(Tracer, RingWraparoundKeepsMostRecent) {
  Tracer tracer(/*capacity_per_thread=*/8);
  tracer.enable();
  for (std::uint64_t i = 0; i < 20; ++i)
    tracer.record(make_span("s", /*start_ns=*/i));
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 8u);
  // The survivors are the last 8 recorded: start times 12..19.
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].start_ns, 12 + i);
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
}

TEST(Tracer, DropCountStaysExactAcrossManyWraps) {
  // Regression: the drop count is derived from each ring's head counter,
  // which must count every span ever stored — not clamp at capacity — or
  // mid-phase overflow goes unreported and profiled runs silently lose
  // their `partial` marker.
  Tracer tracer(/*capacity_per_thread=*/4);
  tracer.enable();
  std::uint64_t dropped_before = 0;
  for (std::uint64_t round = 1; round <= 5; ++round) {
    for (std::uint64_t i = 0; i < 10; ++i)
      tracer.record(make_span("s", i));
    // Each 10-span round overflows the 4-slot ring by exactly 6 more.
    EXPECT_EQ(tracer.total_recorded(), 10 * round);
    EXPECT_EQ(tracer.dropped(), 10 * round - 4);
    EXPECT_EQ(tracer.dropped() - dropped_before, round == 1 ? 6u : 10u);
    dropped_before = tracer.dropped();
  }
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record(make_span("t", 1));
  EXPECT_EQ(tracer.dropped(), 0u);  // below capacity again after clear
}

TEST(Tracer, ClearDropsSpans) {
  Tracer tracer;
  tracer.enable();
  tracer.record(make_span("s", 1));
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
  tracer.record(make_span("t", 2));
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Tracer, MultiThreadMerge) {
  Tracer tracer;
  tracer.enable();
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 50;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (unsigned i = 0; i < kPerThread; ++i)
        tracer.record_span("w", SpanCategory::Kernel, nullptr, 0, 0, 64,
                           tracer.now_ns());
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), kThreads * kPerThread);
  // Merged output is globally ordered by start time...
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  // ...and every recording thread got its own ring (distinct ids).
  std::set<std::uint16_t> tids;
  for (const auto& s : spans) tids.insert(s.thread);
  EXPECT_EQ(tids.size(), kThreads);
}

TEST(Tracer, RecordSpanCapturesOperandsAndBytes) {
  Tracer tracer;
  tracer.enable();
  const unsigned qubits[3] = {7, 2, 5};
  const std::uint64_t t0 = tracer.now_ns();
  tracer.record_span("cx", SpanCategory::Kernel, qubits, 3, /*stride=*/32,
                     /*bytes=*/4096, t0);
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name.data(), "cx");
  EXPECT_EQ(spans[0].num_qubits, 3u);
  EXPECT_EQ(spans[0].q0, 7u);
  EXPECT_EQ(spans[0].q1, 2u);
  EXPECT_EQ(spans[0].stride, 32u);
  EXPECT_EQ(spans[0].bytes, 4096u);
}

TEST(Tracer, SimulatorEmitsOneSpanPerGate) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  const qc::Circuit circuit = qc::qft(6);
  sv::Simulator<double> sim;
  sim.run(circuit);
  tracer.disable();
  const auto spans = tracer.collect();
  std::size_t kernel_spans = 0;
  for (const auto& s : spans)
    if (s.category == SpanCategory::Kernel) ++kernel_spans;
  EXPECT_EQ(kernel_spans, circuit.size());
  tracer.clear();
}

TEST(Tracer, FusedRunEmitsFusionSpanAndFewerKernels) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  const qc::Circuit circuit = qc::qft(6);
  sv::SimulatorOptions opts;
  opts.fusion = true;
  opts.fusion_width = 3;
  sv::Simulator<double> sim(opts);
  sim.run(circuit);
  tracer.disable();
  std::size_t kernel_spans = 0, fusion_spans = 0;
  for (const auto& s : tracer.collect()) {
    kernel_spans += s.category == SpanCategory::Kernel;
    fusion_spans += s.category == SpanCategory::Fusion;
  }
  EXPECT_EQ(fusion_spans, 1u);
  EXPECT_LT(kernel_spans, circuit.size());
  EXPECT_GT(kernel_spans, 0u);
  tracer.clear();
}

TEST(ScopedSpan, RecordsOnNormalExit) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  {
    ScopedSpan span("region", SpanCategory::Region);
    EXPECT_TRUE(span.active());
    span.set_bytes(512);
  }
  tracer.disable();
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name.data(), "region");
  EXPECT_EQ(spans[0].bytes, 512u);
  tracer.clear();
}

TEST(ScopedSpan, RecordsWhenExceptionUnwinds) {
  // The destructor must record even on the unwind path: a span that
  // vanishes when the traced region throws would hide exactly the
  // interesting runs.
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  try {
    ScopedSpan span("throwing", SpanCategory::Region);
    throw std::runtime_error("mid-span failure");
  } catch (const std::runtime_error&) {
  }
  tracer.disable();
  const auto spans = tracer.collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name.data(), "throwing");
  tracer.clear();
}

TEST(ScopedSpan, InactiveWhileTracerDisabled) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span("quiet", SpanCategory::Region);
    EXPECT_FALSE(span.active());
    // Enabling mid-scope must not retroactively record this span: the
    // enabled check is captured at entry.
    tracer.enable();
  }
  tracer.disable();
  EXPECT_TRUE(tracer.collect().empty());
  tracer.clear();
}

TEST(Tracer, ChromeJsonShapeIsValid) {
  Tracer tracer;
  tracer.enable();
  const unsigned q[2] = {0, 1};
  tracer.record_span("h", SpanCategory::Kernel, q, 1, 1, 256, tracer.now_ns());
  tracer.record_span("cx", SpanCategory::Kernel, q, 2, 2, 512, tracer.now_ns());
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cx\""), std::string::npos);
  EXPECT_NE(json.find("\"qubits\":[0,1]"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Tracer, SpanAndBandwidthTables) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    Span s = make_span("h", static_cast<std::uint64_t>(i) * 100, 50);
    s.bytes = 1000;
    tracer.record(s);
  }
  const auto spans = tracer.collect();
  EXPECT_EQ(span_table(spans, 3).num_rows(), 3u);
  const Table bw = kernel_bandwidth_table(spans);
  ASSERT_EQ(bw.num_rows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(bw.row(0)[1]), 5);  // count
  // 5000 bytes over 250 ns = 20 GB/s.
  EXPECT_NEAR(std::get<double>(bw.row(0)[4]), 20.0, 1e-9);
}

}  // namespace
}  // namespace svsim::obs
