// ExecutionPlan compiler, validator, and cross-path equivalence.
//
// The plan IR is the contract between three compilers (compile_plan,
// dist::compile_distributed, the DistPlan adapter) and three executors
// (sv::run_plan, dist::time_plan, perf::cost_plan). These tests pin the
// contract: structural invariants reject malformed plans, and the same
// circuit produces identical amplitudes whether it runs dense, blocked, or
// as a simulated-distributed plan at any rank count.
#include "sv/plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "dist/dist_plan.hpp"
#include "dist/dist_sim.hpp"
#include "machine/cache_probe.hpp"
#include "machine/machine_spec.hpp"
#include "obs/metrics.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/simulator.hpp"
#include "sv/sweep.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;
using qc::Gate;

// ---------------------------------------------------------------- budget --

TEST(PlanCacheBudget, ExplicitBytesWinOverMachine) {
  const auto m = machine::MachineSpec::a64fx();
  PlanOptions po;
  po.cache_bytes = 12345;
  po.machine = &m;
  EXPECT_EQ(plan_cache_budget(po), 12345u);
}

TEST(PlanCacheBudget, MachineDerivesPerCoreShare) {
  // A64FX: 8 MiB CMG-shared L2 across 12 cores ~ 680 KiB per core.
  const auto m = machine::MachineSpec::a64fx();
  PlanOptions po;
  po.machine = &m;
  EXPECT_EQ(plan_cache_budget(po), m.cache_budget_per_core_bytes());
  EXPECT_GT(plan_cache_budget(po), SweepOptions{}.cache_bytes);
}

TEST(PlanCacheBudget, FallsBackToSweepDefault) {
  EXPECT_EQ(plan_cache_budget(PlanOptions{}), SweepOptions{}.cache_bytes);
  EXPECT_EQ(SweepOptions{}.cache_bytes, 512u * 1024u);
}

/// Pins SVSIM_CACHE_BUDGET and the probe override for one test, restoring
/// the default (env unset, probe measured) on exit.
struct ScopedCacheBudgetMode {
  ScopedCacheBudgetMode(const char* mode,
                        const machine::CacheProbeResult* probe) {
    if (mode != nullptr) ::setenv("SVSIM_CACHE_BUDGET", mode, 1);
    machine::set_probed_cache_budget_for_testing(probe);
  }
  ~ScopedCacheBudgetMode() {
    ::unsetenv("SVSIM_CACHE_BUDGET");
    machine::set_probed_cache_budget_for_testing(nullptr);
  }
};

TEST(PlanCacheBudget, ProbedModeUsesTheMeasuredKnee) {
  machine::CacheProbeResult probe;
  probe.valid = true;
  probe.effective_bytes = 128u * 1024u;
  ScopedCacheBudgetMode scope("probed", &probe);

  const auto m = machine::MachineSpec::a64fx();
  PlanOptions po;
  po.machine = &m;
  EXPECT_EQ(plan_cache_budget(po), 128u * 1024u);

  // Explicit bytes still beat the probe.
  po.cache_bytes = 99999;
  EXPECT_EQ(plan_cache_budget(po), 99999u);
}

TEST(PlanCacheBudget, ProbedAndDeclaredDisagreeOnBlockSize) {
  // A probe knee well below the declared A64FX LLC share (>25%
  // disagreement, the kCacheProbeWarnThreshold regime) must steer
  // auto-blocking to a smaller sweep block than the declared budget picks.
  const auto m = machine::MachineSpec::a64fx();
  machine::CacheProbeResult probe;
  probe.valid = true;
  probe.effective_bytes = 128u * 1024u;
  ASSERT_GT(machine::cache_budget_disagreement(m, probe),
            machine::kCacheProbeWarnThreshold);

  const Circuit c = qc::qft(24);
  PlanOptions po;
  po.blocking = true;
  po.machine = &m;

  unsigned probed_blocks = 0;
  {
    ScopedCacheBudgetMode scope("probed", &probe);
    probed_blocks = compile_plan(c, po).block_qubits;
  }
  const unsigned declared_blocks = compile_plan(c, po).block_qubits;
  EXPECT_LT(probed_blocks, declared_blocks);
  EXPECT_EQ(probed_blocks,
            auto_block_qubits(24, probe.effective_bytes, po.amp_bytes,
                              po.min_free_qubits));
}

TEST(PlanCacheBudget, InconclusiveProbeFallsBackToDeclared) {
  machine::CacheProbeResult probe;  // valid == false
  ScopedCacheBudgetMode scope("probed", &probe);
  const auto m = machine::MachineSpec::a64fx();
  PlanOptions po;
  po.machine = &m;
  EXPECT_EQ(plan_cache_budget(po), m.cache_budget_per_core_bytes());
}

TEST(PlanCacheBudget, UnknownModeIsAnError) {
  ScopedCacheBudgetMode scope("psychic", nullptr);
  EXPECT_THROW(plan_cache_budget(PlanOptions{}), Error);
}

TEST(PlanCacheBudget, DeclaredModeIsTheDefaultSpelledOut) {
  machine::CacheProbeResult probe;
  probe.valid = true;
  probe.effective_bytes = 128u * 1024u;
  ScopedCacheBudgetMode scope("declared", &probe);
  const auto m = machine::MachineSpec::a64fx();
  PlanOptions po;
  po.machine = &m;
  EXPECT_EQ(plan_cache_budget(po), m.cache_budget_per_core_bytes());
}

// -------------------------------------------------------------- compiler --

TEST(CompilePlan, SingleNodeIsGateForGateEquivalent) {
  const Circuit c = qc::random_clifford_t(6, 80, 3);
  PlanOptions po;
  po.blocking = true;
  po.block_qubits = 3;
  const ExecutionPlan plan = compile_plan(c, po);
  plan.validate();
  EXPECT_EQ(plan.node_qubits, 0u);
  EXPECT_EQ(plan.num_exchanges, 0u);
  EXPECT_EQ(plan.total_gates(), c.size());

  // Flattening the phases must reproduce the circuit's gate sequence.
  std::vector<Gate> flattened;
  for (const auto& phase : plan.phases)
    for (const auto& g : phase.gates) flattened.push_back(g);
  ASSERT_EQ(flattened.size(), c.size());
  for (std::size_t i = 0; i < flattened.size(); ++i) {
    EXPECT_EQ(flattened[i].kind, c.gate(i).kind);
    EXPECT_EQ(flattened[i].qubits, c.gate(i).qubits);
  }
}

TEST(CompilePlan, CoalescesConsecutiveMeasurements) {
  Circuit c(4, 4);
  c.h(0).h(1).measure(0, 0).measure(1, 1).h(2);
  const ExecutionPlan plan = compile_plan(c, PlanOptions{});
  plan.validate();
  // h, h | measure, measure | h
  ASSERT_EQ(plan.phases.size(), 4u);
  EXPECT_EQ(plan.phases[0].kind, PhaseKind::DenseGate);
  EXPECT_EQ(plan.phases[2].kind, PhaseKind::MeasureFlush);
  EXPECT_EQ(plan.phases[2].gates.size(), 2u);
  EXPECT_EQ(plan.phases[3].kind, PhaseKind::DenseGate);
  EXPECT_EQ(plan.measure_gates, 2u);
  EXPECT_EQ(plan.dense_gates, 3u);
}

TEST(CompilePlan, AutoBlockUsesMachineBudget) {
  const auto m = machine::MachineSpec::a64fx();
  const Circuit c = qc::qft(20);
  PlanOptions po;
  po.blocking = true;
  po.machine = &m;
  const ExecutionPlan plan = compile_plan(c, po);
  EXPECT_EQ(plan.block_qubits,
            auto_block_qubits(20, m.cache_budget_per_core_bytes(),
                              po.amp_bytes, po.min_free_qubits));
}

// ------------------------------------------------------------- validator --

ExecutionPlan tiny_dist_plan() {
  ExecutionPlan p;
  p.num_qubits = 4;
  p.node_qubits = 1;
  p.local_qubits = 3;
  p.block_qubits = 2;
  return p;
}

PlanPhase exchange_phase(unsigned local_slot, unsigned node_slot,
                         int rank_bit) {
  PlanPhase x;
  x.kind = PhaseKind::Exchange;
  x.moves_data = true;
  x.hops.push_back({local_slot, node_slot, rank_bit, 128.0});
  return x;
}

TEST(PlanValidate, RejectsAdjacentExchangePhases) {
  ExecutionPlan p = tiny_dist_plan();
  p.phases.push_back(exchange_phase(0, 3, 0));
  p.phases.push_back(exchange_phase(0, 3, 0));
  p.finalize();
  EXPECT_THROW(p.validate(), Error);
}

TEST(PlanValidate, RejectsSweepGateAboveBlockBoundary) {
  ExecutionPlan p = tiny_dist_plan();
  PlanPhase sweep;
  sweep.kind = PhaseKind::LocalSweep;
  sweep.gates.push_back(Gate::h(2));  // block_qubits = 2: slot 2 is outside
  p.phases.push_back(sweep);
  p.finalize();
  EXPECT_THROW(p.validate(), Error);
}

TEST(PlanValidate, RejectsMultiGateDensePhase) {
  ExecutionPlan p = tiny_dist_plan();
  PlanPhase dense;
  dense.kind = PhaseKind::DenseGate;
  dense.gates.push_back(Gate::h(0));
  dense.gates.push_back(Gate::h(1));
  p.phases.push_back(dense);
  p.finalize();
  EXPECT_THROW(p.validate(), Error);
}

TEST(PlanValidate, RejectsInconsistentRankBit) {
  ExecutionPlan p = tiny_dist_plan();
  p.phases.push_back(exchange_phase(0, 3, 2));  // slot 3 is rank bit 0
  p.finalize();
  EXPECT_THROW(p.validate(), Error);
}

TEST(PlanValidate, RejectsMeasureUnderPermutedLayout) {
  // A data-moving exchange permutes the register; measuring before the
  // layout is restored would sample the wrong qubit.
  ExecutionPlan p = tiny_dist_plan();
  p.num_clbits = 1;
  p.phases.push_back(exchange_phase(0, 3, 0));
  PlanPhase mf;
  mf.kind = PhaseKind::MeasureFlush;
  mf.gates.push_back(Gate::measure(0, 0));
  p.phases.push_back(mf);
  p.finalize();
  p.final_slot_of = {3, 1, 2, 0};  // matches the unrestored permutation
  EXPECT_THROW(p.validate(), Error);
}

// -------------------------------------------------- distributed compiler --

TEST(CompileDistributed, RemapRestoresIdentityLayout) {
  const Circuit c = qc::random_quantum_volume(8, 6, 11);
  dist::DistExecOptions o;
  o.scheduler = dist::CommScheduler::Remap;
  for (unsigned d : {1u, 2u, 3u}) {
    const ExecutionPlan plan = dist::compile_distributed(c, d, o);
    plan.validate();
    EXPECT_EQ(plan.node_qubits, d);
    for (unsigned q = 0; q < plan.num_qubits; ++q)
      EXPECT_EQ(plan.final_slot_of[q], q) << "d=" << d << " q=" << q;
  }
}

TEST(CompileDistributed, NaiveIsCostOnly) {
  const Circuit c = qc::random_quantum_volume(8, 6, 11);
  dist::DistExecOptions o;
  o.scheduler = dist::CommScheduler::Naive;
  const ExecutionPlan plan = dist::compile_distributed(c, 2, o);
  plan.validate();
  std::size_t exchange_phases = 0;
  for (const auto& phase : plan.phases) {
    if (phase.kind != PhaseKind::Exchange) continue;
    ++exchange_phases;
    EXPECT_FALSE(phase.moves_data);
  }
  EXPECT_GT(exchange_phases, 0u);
  // The layout never changes, so the final layout is trivially identity.
  for (unsigned q = 0; q < plan.num_qubits; ++q)
    EXPECT_EQ(plan.final_slot_of[q], q);
}

TEST(CompileDistributed, RemapOpensNoMoreWindowsThanNaivePaysExchanges) {
  // The Belady remapper's reason to exist: on a workload that hammers node
  // slots non-diagonally (QV), batching gates between remaps needs fewer
  // collective windows than paying an exchange at every node-slot gate.
  const Circuit c = qc::random_quantum_volume(10, 8, 5);
  dist::DistExecOptions naive;
  naive.scheduler = dist::CommScheduler::Naive;
  naive.restore_layout = false;
  dist::DistExecOptions remap;
  remap.scheduler = dist::CommScheduler::Remap;
  const ExecutionPlan np = dist::compile_distributed(c, 3, naive);
  const ExecutionPlan rp = dist::compile_distributed(c, 3, remap);
  EXPECT_LE(rp.num_windows(), np.num_exchanges);
  EXPECT_LE(rp.exchange_bytes_per_rank, np.exchange_bytes_per_rank);
}

TEST(CompileDistributed, RejectsDegenerateWidths) {
  const Circuit c = qc::qft(4);
  EXPECT_THROW(dist::compile_distributed(c, 4, {}), Error);
  EXPECT_THROW(dist::compile_distributed(c, 3, {}), Error);  // local < 2
}

// ------------------------------------------------------------ executors --

/// |got - want| elementwise within tol.
template <typename T>
void expect_amplitudes_near(const std::vector<std::complex<T>>& got,
                            const std::vector<std::complex<double>>& want,
                            double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(std::abs(std::complex<double>(got[i]) - want[i]), 0.0, tol)
        << "amplitude " << i;
}

TEST(PlanEquivalence, DenseBlockedAndDistributedAgree) {
  // The same circuit through every compile path must produce the same
  // state. Random QV circuits on 8 qubits straddle both boundaries: block
  // (3 or auto) and rank (8-d .. 8).
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Circuit c = qc::random_quantum_volume(8, 6, seed);
    const auto want = qc::dense::run(c);

    {  // blocked single-node
      PlanOptions po;
      po.blocking = true;
      po.block_qubits = 3;
      StateVector<double> state(8);
      run_plan(state, compile_plan(c, po));
      expect_amplitudes_near(state.to_vector(), want, 1e-10);
    }
    for (unsigned d : {1u, 2u, 3u}) {  // simulated-distributed, remap
      dist::DistExecOptions o;
      o.scheduler = dist::CommScheduler::Remap;
      o.plan.blocking = true;
      o.plan.block_qubits = 3;
      const ExecutionPlan plan = dist::compile_distributed(c, d, o);
      Simulator<double> sim;
      StateVector<double> state(8);
      sim.run_plan(state, plan);
      expect_amplitudes_near(state.to_vector(), want, 1e-10);
    }
  }
}

TEST(PlanEquivalence, FusionPreservesDistributedAmplitudes) {
  const Circuit c = qc::random_quantum_volume(8, 5, 77);
  const auto want = qc::dense::run(c);
  dist::DistExecOptions o;
  o.scheduler = dist::CommScheduler::Remap;
  o.plan.fusion = true;
  o.plan.fusion_width = 3;
  o.plan.blocking = true;
  o.plan.block_qubits = 3;
  const ExecutionPlan plan = dist::compile_distributed(c, 2, o);
  Simulator<double> sim;
  StateVector<double> state(8);
  sim.run_plan(state, plan);
  expect_amplitudes_near(state.to_vector(), want, 1e-9);
}

TEST(PlanEquivalence, TrailingMeasurementMatchesDensePath) {
  // Measurement must happen under the restored identity layout and draw
  // from the same RNG stream as the dense path: same seed, same outcomes,
  // same collapsed state.
  Circuit c = qc::random_quantum_volume(6, 4, 9);
  for (unsigned q = 0; q < 6; ++q) c.measure(q, q);

  SimulatorOptions so;
  so.seed = 42;
  Simulator<double> dense(so);
  const StateVector<double> want = dense.run(c);
  const std::vector<bool> want_bits = dense.classical_bits();

  for (unsigned d : {1u, 2u}) {
    dist::DistExecOptions o;
    o.scheduler = dist::CommScheduler::Remap;
    o.plan.blocking = true;
    o.plan.block_qubits = 2;
    const ExecutionPlan plan = dist::compile_distributed(c, d, o);
    plan.validate();
    Simulator<double> sim(so);
    StateVector<double> state(6);
    sim.run_plan(state, plan);
    EXPECT_EQ(sim.classical_bits(), want_bits) << "d=" << d;
    expect_amplitudes_near(state.to_vector(), want.to_vector(), 1e-10);
  }
}

TEST(RunPlan, PassThroughGatesAreObserved) {
  // Regression: gates above the block boundary execute as DenseGate phases
  // and must still show up in the engine stats and the plan.* counters —
  // the blocked path once skipped their bookkeeping.
  Circuit c(6);
  c.h(0).h(5).cx(4, 5).h(1);
  PlanOptions po;
  po.blocking = true;
  po.block_qubits = 3;
  const ExecutionPlan plan = compile_plan(c, po);

  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t execs0 = registry.counter("plan.executions").value();
  const std::uint64_t phases0 =
      registry.counter("plan.phases_executed").value();

  StateVector<double> state(6);
  const EngineStats stats = run_plan(state, plan);
  EXPECT_EQ(stats.passthrough_gates, 2u);  // h(5), cx(4,5)
  EXPECT_EQ(stats.blocked_gates, 2u);      // h(0), h(1)
  EXPECT_EQ(stats.traversals, plan.traversals());
  EXPECT_GT(stats.bytes_streamed, 0u);

  EXPECT_EQ(registry.counter("plan.executions").value(), execs0 + 1);
  EXPECT_EQ(registry.counter("plan.phases_executed").value(),
            phases0 + plan.phases.size());
}

TEST(CostPlan, MirrorsPlanStructure) {
  const auto m = machine::MachineSpec::a64fx();
  const Circuit c = qc::random_quantum_volume(20, 6, 13);
  dist::DistExecOptions o;
  o.scheduler = dist::CommScheduler::Remap;
  o.plan.blocking = true;
  o.plan.machine = &m;
  const ExecutionPlan plan = dist::compile_distributed(c, 2, o);
  const perf::PlanCost cost = perf::cost_plan(plan, m, {});
  EXPECT_EQ(cost.phases.size(), plan.phases.size());
  EXPECT_EQ(cost.num_exchanges, plan.num_exchanges);
  EXPECT_NEAR(cost.exchange_bytes_per_rank, plan.exchange_bytes_per_rank,
              1e-6);
  EXPECT_EQ(cost.num_windows, plan.num_windows());
  EXPECT_GT(cost.compute_seconds, 0.0);
  EXPECT_GT(cost.total_flops, 0.0);
}

TEST(DistTiming, LegacyPlanAdapterMatchesSharedIR) {
  // The legacy DistPlan overloads must be pure adapters: identical numbers
  // to timing the converted ExecutionPlan directly.
  const auto m = machine::MachineSpec::a64fx();
  const auto net = dist::InterconnectSpec::tofu_d();
  const Circuit c = qc::qft(18);
  for (auto sched :
       {dist::CommScheduler::Naive, dist::CommScheduler::Remap}) {
    const dist::DistPlan legacy = dist::plan_distribution(c, 3, sched);
    const ExecutionPlan converted = dist::to_execution_plan(legacy);
    const dist::DistTiming a = dist::time_plan(legacy, m, {}, net);
    const dist::DistTiming b = dist::time_plan(converted, m, {}, net);
    EXPECT_DOUBLE_EQ(a.compute_seconds, b.compute_seconds);
    EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
    EXPECT_EQ(a.num_exchanges, b.num_exchanges);
    EXPECT_DOUBLE_EQ(a.exchange_bytes, b.exchange_bytes);
    EXPECT_DOUBLE_EQ(
        dist::event_driven_makespan(legacy, m, {}, net),
        dist::event_driven_makespan(converted, m, {}, net));
  }
}

}  // namespace
}  // namespace svsim::sv
