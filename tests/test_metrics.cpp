#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/threading.hpp"
#include "qc/library.hpp"
#include "sv/fusion.hpp"
#include "sv/simulator.hpp"

namespace svsim::obs {
namespace {

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketingIsLowerBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // v <= bounds[i] lands in bucket i; v > bounds.back() overflows.
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (le semantics)
  h.observe(2.0);    // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(99.0);   // bucket 2
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 2.0 + 10.0 + 99.0 + 1000.0, 1e-9);
  EXPECT_NEAR(h.mean(), h.sum() / 6.0, 1e-12);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({3.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST(Registry, ReturnsStableReferencesAndResets) {
  MetricsRegistry& r = MetricsRegistry::global();
  Counter& a = r.counter("test.registry_counter");
  Counter& b = r.counter("test.registry_counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  r.reset();
  EXPECT_EQ(a.value(), 0u);
}

TEST(Registry, JsonDumpContainsAllMetricKinds) {
  MetricsRegistry& r = MetricsRegistry::global();
  r.counter("test.json_counter").add(3);
  r.gauge("test.json_gauge").set(1.25);
  r.histogram("test.json_hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Registry, TableListsMetrics) {
  MetricsRegistry& r = MetricsRegistry::global();
  r.counter("test.table_counter").add(5);
  const Table t = r.table();
  EXPECT_GE(t.num_rows(), 1u);
  EXPECT_NE(t.to_text().find("test.table_counter"), std::string::npos);
}

TEST(Instrumentation, SimulatorPublishesRunCounters) {
  MetricsRegistry& r = MetricsRegistry::global();
  r.reset();
  sv::Simulator<double> sim;
  sim.run(qc::qft(5));
  EXPECT_EQ(r.counter("sv.runs").value(), 1u);
  EXPECT_EQ(r.counter("sv.gates_applied").value(), qc::qft(5).size());
  EXPECT_GT(r.counter("sv.bytes_streamed").value(), 0u);
}

TEST(Instrumentation, FusionPublishesBlockWidths) {
  MetricsRegistry& r = MetricsRegistry::global();
  r.reset();
  sv::FusionOptions options;
  options.max_width = 3;
  sv::fuse(qc::qft(6), options);
  Histogram& h = r.histogram("fusion.block_width", {});
  EXPECT_GT(h.count(), 0u);
  EXPECT_GE(h.mean(), 1.0);
  EXPECT_LE(h.mean(), 3.0);
  EXPECT_EQ(r.counter("fusion.blocks").value(), h.count());
  EXPECT_GE(r.counter("fusion.gates_merged").value(), h.count());
}

TEST(Instrumentation, ThreadPoolCountsRegions) {
  ThreadPool pool(2);
  pool.reset_stats();
  pool.parallel_for(
      1u << 14, [](unsigned, std::uint64_t, std::uint64_t) {},
      /*serial_cutoff=*/1);
  pool.parallel_for(
      4, [](unsigned, std::uint64_t, std::uint64_t) {},
      /*serial_cutoff=*/1 << 12);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_regions, 1u);
  EXPECT_EQ(stats.inline_regions, 1u);
  EXPECT_EQ(stats.items, (1u << 14) + 4u);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().items, 0u);
}

}  // namespace
}  // namespace svsim::obs
