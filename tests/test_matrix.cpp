#include "qc/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace svsim::qc {
namespace {

TEST(Matrix, RejectsNonPowerOfTwoDim) {
  EXPECT_THROW(Matrix(3), Error);
  EXPECT_THROW(Matrix(0), Error);
  EXPECT_NO_THROW(Matrix(4));
}

TEST(Matrix, RejectsWrongEntryCount) {
  EXPECT_THROW(Matrix(2, {1.0, 2.0, 3.0}), Error);
}

TEST(Matrix, IdentityIsUnitaryAndDiagonal) {
  const Matrix id = Matrix::identity(8);
  EXPECT_TRUE(id.is_unitary());
  EXPECT_TRUE(id.is_diagonal());
  EXPECT_EQ(id.num_qubits(), 3u);
}

TEST(Matrix, MultiplyAgainstHandComputed) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  const Matrix a(2, {1, 2, 3, 4});
  const Matrix b(2, {5, 6, 7, 8});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0).real(), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1).real(), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0).real(), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1).real(), 50.0);
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  const Matrix a(2, {cplx{1, 2}, cplx{3, 4}, cplx{5, 6}, cplx{7, 8}});
  const Matrix d = a.dagger();
  EXPECT_EQ(d(0, 0), (cplx{1, -2}));
  EXPECT_EQ(d(0, 1), (cplx{5, -6}));
  EXPECT_EQ(d(1, 0), (cplx{3, -4}));
}

TEST(Matrix, KronDimensionsAndEntries) {
  const Matrix a(2, {1, 0, 0, 2});
  const Matrix b(2, {3, 0, 0, 4});
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.dim(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 0).real(), 3.0);
  EXPECT_DOUBLE_EQ(k(1, 1).real(), 4.0);
  EXPECT_DOUBLE_EQ(k(2, 2).real(), 6.0);
  EXPECT_DOUBLE_EQ(k(3, 3).real(), 8.0);
}

TEST(Matrix, ApplyMatchesManualMatVec) {
  const Matrix a(2, {cplx{0, 1}, 2, 3, cplx{0, -1}});
  const std::vector<cplx> v = {1.0, cplx{0, 1}};
  const auto out = a.apply(v);
  EXPECT_NEAR(std::abs(out[0] - (cplx{0, 1} * 1.0 + 2.0 * cplx{0, 1})), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(out[1] - (3.0 * 1.0 + cplx{0, -1} * cplx{0, 1})), 0.0,
              1e-12);
}

TEST(Matrix, RandomUnitaryIsUnitary) {
  Xoshiro256 rng(17);
  for (std::size_t dim : {2u, 4u, 8u, 16u}) {
    const Matrix u = Matrix::random_unitary(dim, rng);
    EXPECT_LT(u.unitarity_error(), 1e-12) << "dim " << dim;
  }
}

TEST(Matrix, RandomUnitariesDiffer) {
  Xoshiro256 rng(17);
  const Matrix a = Matrix::random_unitary(4, rng);
  const Matrix b = Matrix::random_unitary(4, rng);
  EXPECT_GT(a.distance(b), 0.1);
}

TEST(Matrix, DiagonalFactory) {
  const Matrix d = Matrix::diagonal({1.0, cplx{0, 1}});
  EXPECT_TRUE(d.is_diagonal());
  EXPECT_TRUE(d.is_unitary());
  EXPECT_EQ(d(1, 1), (cplx{0, 1}));
}

TEST(Matrix, DistanceUpToPhase) {
  Xoshiro256 rng(5);
  const Matrix u = Matrix::random_unitary(4, rng);
  const Matrix v = u * std::polar(1.0, 1.234);  // global phase
  EXPECT_GT(u.distance(v), 0.1);
  EXPECT_LT(u.distance_up_to_phase(v), 1e-12);
}

TEST(Matrix, AddSubtract) {
  const Matrix a(2, {1, 2, 3, 4});
  const Matrix b(2, {4, 3, 2, 1});
  const Matrix s = a + b;
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(s(0, 0).real(), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1).real(), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0).real(), -3.0);
  EXPECT_DOUBLE_EQ(d(1, 1).real(), 3.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  EXPECT_THROW(Matrix(2) * Matrix(4), Error);
  EXPECT_THROW(Matrix(2) + Matrix(4), Error);
  EXPECT_THROW(Matrix(2).distance(Matrix(4)), Error);
  EXPECT_THROW(Matrix(4).apply({1.0, 0.0}), Error);
}

TEST(Matrix, ToStringContainsEntries) {
  const Matrix a(2, {1, 0, 0, 1});
  const std::string s = a.to_string(2);
  EXPECT_NE(s.find("1.00"), std::string::npos);
}

}  // namespace
}  // namespace svsim::qc
