#include "perf/perf_simulator.hpp"

#include <gtest/gtest.h>

#include "qc/library.hpp"

namespace svsim::perf {
namespace {

using machine::Affinity;
using machine::ExecConfig;
using machine::MachineSpec;

const MachineSpec kA64fx = MachineSpec::a64fx();

TEST(PerfSimulator, GateTimeIsPositiveAndBandwidthBounded) {
  ExecConfig cfg;
  const GateTiming t = time_gate(qc::Gate::h(10), 28, kA64fx, cfg);
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_TRUE(t.memory_bound);  // SV 1q gates are always memory bound
  // Effective bandwidth cannot exceed STREAM.
  const double gbps = t.cost.bytes / t.seconds * 1e-9;
  EXPECT_LE(gbps, kA64fx.stream_bandwidth_gbps() * 1.001);
}

TEST(PerfSimulator, LargeStateGateTimeMatchesStreamEstimate) {
  // n=30 H gate: 2 x 16 GiB traffic over ~830 GB/s ≈ 41 ms.
  ExecConfig cfg;
  const GateTiming t = time_gate(qc::Gate::h(20), 30, kA64fx, cfg);
  const double expected =
      2.0 * 1024.0 * 1024.0 * 1024.0 * 16.0 / (830e9);
  EXPECT_NEAR(t.seconds, expected, expected * 0.05);
}

TEST(PerfSimulator, SmallStatesServedFromCacheAreFaster) {
  ExecConfig cfg;
  // Bytes/second for n=14 (256 KiB, L1-resident) vs n=26 (1 GiB, HBM).
  const GateTiming small = time_gate(qc::Gate::h(5), 14, kA64fx, cfg);
  const GateTiming large = time_gate(qc::Gate::h(5), 26, kA64fx, cfg);
  const double bw_small = small.cost.bytes / small.memory_seconds;
  const double bw_large = large.cost.bytes / large.memory_seconds;
  EXPECT_GT(bw_small, bw_large);
  EXPECT_EQ(small.serving_level, 0);
  EXPECT_EQ(large.serving_level, -1);
}

TEST(PerfSimulator, ForkJoinOverheadDominatesTinyStates) {
  ExecConfig cfg;  // 48 threads
  const GateTiming tiny = time_gate(qc::Gate::h(2), 10, kA64fx, cfg);
  EXPECT_GT(tiny.overhead_seconds,
            std::max(tiny.compute_seconds, tiny.memory_seconds));
}

TEST(PerfSimulator, ThreadScalingSaturates) {
  // Memory-bound kernel: speedup from 1 to 12 threads large, 12 to 48 = 4x
  // (one CMG to four), beyond that nothing.
  const unsigned n = 28;
  auto seconds_with = [&](unsigned threads) {
    ExecConfig cfg;
    cfg.threads = threads;
    return time_gate(qc::Gate::h(14), n, kA64fx, cfg).seconds;
  };
  const double t1 = seconds_with(1);
  const double t6 = seconds_with(6);
  const double t12 = seconds_with(12);
  const double t48 = seconds_with(48);
  EXPECT_GT(t1 / t6, 4.0);    // near-linear at first (40 GB/s/core)
  EXPECT_LT(t6 / t12, 1.5);   // CMG ceiling kicks in
  EXPECT_NEAR(t12 / t48, 4.0, 0.5);  // four CMGs
}

TEST(PerfSimulator, ScatterBeatsCompactForMemoryBoundMidCounts) {
  const unsigned n = 28;
  ExecConfig compact;
  compact.threads = 8;
  compact.affinity = Affinity::Compact;
  ExecConfig scatter = compact;
  scatter.affinity = Affinity::Scatter;
  const double tc = time_gate(qc::Gate::h(14), n, kA64fx, compact).seconds;
  const double ts = time_gate(qc::Gate::h(14), n, kA64fx, scatter).seconds;
  EXPECT_LT(ts, tc);
}

TEST(PerfSimulator, LowTargetQubitIsSlowerInCache) {
  // In the L1 regime the kernel is closer to compute limits, so the SIMD
  // penalty of target 0 shows up; in the HBM regime bandwidth hides it.
  ExecConfig cfg;
  const double t0 = time_gate(qc::Gate::rx(0, 0.5), 14, kA64fx, cfg).compute_seconds;
  const double t8 = time_gate(qc::Gate::rx(8, 0.5), 14, kA64fx, cfg).compute_seconds;
  EXPECT_GT(t0, t8);
}

TEST(PerfSimulator, CircuitReportAggregates) {
  const qc::Circuit c = qc::qft(20);
  ExecConfig cfg;
  PerfOptions opts;
  opts.record_trace = true;
  const PerfReport r = simulate_circuit(c, kA64fx, cfg, opts);
  EXPECT_EQ(r.num_gates, c.size());
  EXPECT_EQ(r.trace.size(), c.size());
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.achieved_gflops(), 0.0);
  EXPECT_GT(r.achieved_bandwidth_gbps(), 0.0);
  // Sum of per-kernel seconds equals the total.
  double sum = 0.0;
  for (const auto& [k, s] : r.seconds_by_kernel) sum += s;
  EXPECT_NEAR(sum, r.total_seconds, 1e-12);
}

TEST(PerfSimulator, FusionReducesModeledTime) {
  const qc::Circuit c = qc::random_quantum_volume(24, 8, 5);
  ExecConfig cfg;
  PerfOptions plain;
  PerfOptions fused;
  fused.fusion = true;
  fused.fusion_width = 4;
  const double t_plain = simulate_circuit(c, kA64fx, cfg, plain).total_seconds;
  const double t_fused = simulate_circuit(c, kA64fx, cfg, fused).total_seconds;
  EXPECT_LT(t_fused, t_plain);
}

TEST(PerfSimulator, A64fxBeatsXeonOnBigStates) {
  // Memory-bound workload: 830 vs ~205 GB/s STREAM → ~4x.
  const qc::Circuit c = qc::qft(28);
  ExecConfig a64;
  ExecConfig xeon_cfg;
  const double t_a64 = simulate_circuit(c, kA64fx, a64).total_seconds;
  const double t_xeon =
      simulate_circuit(c, MachineSpec::xeon_6148_dual(), xeon_cfg)
          .total_seconds;
  EXPECT_GT(t_xeon / t_a64, 2.5);
  EXPECT_LT(t_xeon / t_a64, 6.0);
}

TEST(PerfSimulator, VectorLengthMattersOnlyInCacheRegime) {
  // HBM regime: VL 128 vs 512 nearly identical (memory bound).
  auto time_with_vl = [&](unsigned vl, unsigned n, unsigned threads) {
    ExecConfig cfg;
    cfg.vector_bits = vl;
    cfg.threads = threads;
    return time_gate(qc::Gate::rx(8, 0.3), n, kA64fx, cfg).seconds;
  };
  const double hbm_128 = time_with_vl(128, 28, 48);
  const double hbm_512 = time_with_vl(512, 28, 48);
  EXPECT_NEAR(hbm_128 / hbm_512, 1.0, 0.05);
  // Cache regime (single thread avoids fork-join noise): shorter vectors
  // hurt because the kernel is compute-limited there.
  const double l2_128 = time_with_vl(128, 14, 1);
  const double l2_512 = time_with_vl(512, 14, 1);
  EXPECT_GT(l2_128 / l2_512, 1.5);
}

TEST(PerfSimulator, BoostModeSpeedsUpCacheResidentWork) {
  const qc::Circuit c = qc::qft(14);  // L1/L2-resident
  ExecConfig cfg;
  const double t_norm = simulate_circuit(c, kA64fx, cfg).total_seconds;
  const double t_boost =
      simulate_circuit(c, MachineSpec::a64fx_boost(), cfg).total_seconds;
  EXPECT_LT(t_boost, t_norm);
}

TEST(PerfSimulator, EcoModeBarelyHurtsMemoryBoundWork) {
  const qc::Circuit c = qc::qft(28);  // HBM-resident
  ExecConfig cfg;
  const double t_norm = simulate_circuit(c, kA64fx, cfg).total_seconds;
  const double t_eco =
      simulate_circuit(c, MachineSpec::a64fx_eco(), cfg).total_seconds;
  EXPECT_LT(t_eco / t_norm, 1.10);  // within 10%
}

}  // namespace
}  // namespace svsim::perf
