// Statistical validation of measurement sampling: chi-square goodness-of-fit
// of sampled histograms against the exact |amplitude|^2 distribution for
// several preparation circuits, plus determinism and trajectory-vs-fast-path
// agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/bits.hpp"
#include "qc/dense.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {
namespace {

using qc::Circuit;

/// Chi-square statistic of observed counts against expected probabilities
/// (cells with expected count < 5 are pooled into a rest bucket).
double chi_square(const std::map<std::uint64_t, std::size_t>& counts,
                  const std::vector<double>& probs, std::size_t shots,
                  int* dof_out) {
  double chi2 = 0.0;
  int dof = -1;  // constraints: totals match
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(shots);
    const auto it = counts.find(i);
    const double observed =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    if (expected < 5.0) {
      pooled_expected += expected;
      pooled_observed += observed;
      continue;
    }
    chi2 += (observed - expected) * (observed - expected) / expected;
    ++dof;
  }
  if (pooled_expected >= 5.0) {
    chi2 += (pooled_observed - pooled_expected) *
            (pooled_observed - pooled_expected) / pooled_expected;
    ++dof;
  }
  *dof_out = std::max(dof, 1);
  return chi2;
}

/// Loose upper quantile for chi-square: mean + 4·sqrt(2·dof) is far beyond
/// the 99.99th percentile for the dofs used here.
double chi_square_bound(int dof) {
  return dof + 4.0 * std::sqrt(2.0 * dof);
}

void check_sampling(const Circuit& circuit, std::size_t shots,
                    std::uint64_t seed) {
  const auto exact = qc::dense::run(circuit);
  std::vector<double> probs(exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) probs[i] = std::norm(exact[i]);

  SimulatorOptions opts;
  opts.seed = seed;
  Simulator<double> sim(opts);
  const auto counts = sim.sample_counts(circuit, shots);

  std::size_t total = 0;
  for (const auto& [k, v] : counts) total += v;
  ASSERT_EQ(total, shots);

  int dof = 0;
  const double chi2 = chi_square(counts, probs, shots, &dof);
  EXPECT_LT(chi2, chi_square_bound(dof))
      << "chi2=" << chi2 << " dof=" << dof;
}

TEST(SamplingStats, UniformSuperposition) {
  Circuit c(4);
  for (unsigned q = 0; q < 4; ++q) c.h(q);
  check_sampling(c, 16000, 1);
}

TEST(SamplingStats, BiasedSingleQubit) {
  Circuit c(1);
  c.ry(0, 0.8);  // P(1) = sin^2(0.4)
  check_sampling(c, 20000, 2);
}

TEST(SamplingStats, QftOfBasisState) {
  Circuit c(4);
  c.x(0).x(2);
  c.compose(qc::qft(4));
  check_sampling(c, 16000, 3);
}

TEST(SamplingStats, RandomCircuitPorterThomasIsh) {
  check_sampling(qc::random_quantum_volume(5, 6, 77), 20000, 4);
}

TEST(SamplingStats, GroverConcentratesMass) {
  check_sampling(qc::grover(4, 11), 8000, 5);
}

TEST(SamplingStats, TrajectoryPathMatchesFastPathDistribution) {
  // The same Bell circuit measured (a) via fast path and (b) forced down the
  // trajectory path must give statistically identical histograms.
  Circuit fast(2);
  fast.h(0).cx(0, 1).measure_all();

  Circuit trajectory(2);
  // A reset on an untouched ancilla-free qubit forces the general path but
  // does not change the distribution: reset(1) before any gate is identity
  // on |0>.
  trajectory.reset(1);
  trajectory.h(0).cx(0, 1).measure_all();

  SimulatorOptions opts;
  opts.seed = 9;
  Simulator<double> sim(opts);
  const auto a = sim.sample_counts(fast, 2000);
  const auto b = sim.sample_counts(trajectory, 2000);
  // Both support {00, 11} with roughly equal mass.
  for (const auto& counts : {a, b}) {
    std::size_t c00 = counts.count(0) ? counts.at(0) : 0;
    std::size_t c11 = counts.count(3) ? counts.at(3) : 0;
    EXPECT_EQ(c00 + c11, 2000u);
    EXPECT_NEAR(static_cast<double>(c00) / 2000.0, 0.5, 0.06);
  }
}

TEST(SamplingStats, SeedChangesSamplesButNotDistribution) {
  Circuit c(3);
  for (unsigned q = 0; q < 3; ++q) c.h(q);
  SimulatorOptions o1, o2;
  o1.seed = 100;
  o2.seed = 200;
  Simulator<double> s1(o1), s2(o2);
  const auto a = s1.sample_counts(c, 4000);
  const auto b = s2.sample_counts(c, 4000);
  EXPECT_NE(a, b);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(a.at(k)) / 4000.0, 0.125, 0.03);
    EXPECT_NEAR(static_cast<double>(b.at(k)) / 4000.0, 0.125, 0.03);
  }
}

}  // namespace
}  // namespace svsim::sv
