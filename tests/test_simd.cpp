// SIMD backend equivalence: every compiled-and-available backend must
// reproduce the portable scalar reference table (sv::block_kernel_table)
// on random states, for every KernelClass, at both precisions, within the
// documented ULP bounds (sv/simd/simd.hpp): 1e-13 absolute on normalized
// f64 states, 1e-5 on f32; bit-exact for permutation and Hadamard entries.
// Backends the binary lacks (e.g. NEON on x86) or the CPU cannot run are
// skipped, not failed, so the suite is green on every host.
#include "sv/simd/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "qc/gate.hpp"
#include "qc/matrix.hpp"
#include "sv/kernels.hpp"

namespace svsim::sv {
namespace {

using qc::Gate;
using qc::Matrix;

std::size_t idx(KernelClass c) { return static_cast<std::size_t>(c); }

const simd::BackendInfo* backend_info(simd::Isa isa) {
  static const std::vector<simd::BackendInfo> all = simd::backends();
  for (const auto& b : all)
    if (b.isa == isa) return &b;
  return nullptr;
}

/// Normalized random block of 2^n amplitudes.
template <typename T>
std::vector<std::complex<T>> random_block(unsigned n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::complex<T>> v(pow2(n));
  double norm = 0.0;
  for (auto& a : v) {
    const double re = rng.normal(), im = rng.normal();
    a = {static_cast<T>(re), static_cast<T>(im)};
    norm += re * re + im * im;
  }
  const T inv = static_cast<T>(1.0 / std::sqrt(norm));
  for (auto& a : v) a *= inv;
  return v;
}

std::vector<unsigned> distinct_qubits(unsigned n, unsigned k,
                                      Xoshiro256& rng) {
  std::vector<unsigned> qs;
  while (qs.size() < k) {
    const auto q = static_cast<unsigned>(rng.uniform_int(n));
    if (std::find(qs.begin(), qs.end(), q) == qs.end()) qs.push_back(q);
  }
  return qs;
}

/// One representative gate per applicable KernelClass at random operand
/// positions (Unsupported has no applicable gate; 3-operand classes need
/// n >= 3). Together with the per-target sweeps below this exercises every
/// dispatch-table entry a backend can override.
std::vector<Gate> representative_gates(unsigned n, Xoshiro256& rng) {
  const auto q2 = distinct_qubits(n, 2, rng);
  std::vector<Gate> gates = {
      Gate::i(q2[0]),                       // Nop
      Gate::x(q2[0]),                       // PermX
      Gate::y(q2[1]),                       // PermY
      Gate::swap(q2[0], q2[1]),             // PermSwap
      Gate::cx(q2[0], q2[1]),               // Mcx
      Gate::h(q2[0]),                       // Hadamard
      Gate::rz(q2[1], 0.7),                 // Diag1
      Gate::s(q2[0]),                       // Diag1 (skip_lower path)
      Gate::crz(q2[0], q2[1], 0.6),         // CtrlDiag1
      Gate::cp(q2[0], q2[1], 0.5),          // McPhase
      Gate::rzz(q2[0], q2[1], 0.8),         // Diag2
      Gate::u(q2[0], 0.3, 0.7, 1.9),        // Matrix1
      Gate::cry(q2[0], q2[1], 0.4),         // CtrlMatrix1
      Gate::rxx(q2[0], q2[1], 0.3),         // Matrix2
      Gate::u2q(q2[0], q2[1], Matrix::random_unitary(4, rng)),  // Matrix2
      Gate::diag({q2[0], q2[1]},
                 {std::polar(1.0, 0.3), std::polar(1.0, 1.1),
                  std::polar(1.0, 2.2), std::polar(1.0, 4.0)}),  // DiagK
  };
  if (n >= 3) {
    const auto q3 = distinct_qubits(n, 3, rng);
    gates.push_back(Gate::ccx(q3[0], q3[1], q3[2]));    // Mcx, 2 controls
    gates.push_back(Gate::cswap(q3[0], q3[1], q3[2]));  // MatrixK
    gates.push_back(
        Gate::unitary(q3, Matrix::random_unitary(8, rng)));  // MatrixK
  }
  return gates;
}

/// Applies `g` through the active table and the scalar reference on the
/// same random block; returns the max absolute amplitude difference.
template <typename T>
double divergence(const Gate& g, unsigned n, std::uint64_t seed) {
  const PreparedGate<T> pg = prepare_gate<T>(g);
  const auto& active = active_block_kernel_table<T>();
  const auto& scalar = block_kernel_table<T>();
  std::vector<std::complex<T>> a = random_block<T>(n, seed);
  std::vector<std::complex<T>> b = a;
  active[idx(pg.cls)](a.data(), n, pg);
  scalar[idx(pg.cls)](b.data(), n, pg);
  double dist = 0.0;
  for (std::uint64_t i = 0; i < a.size(); ++i)
    dist = std::max(dist, static_cast<double>(std::abs(a[i] - b[i])));
  return dist;
}

template <typename T>
void check_backend_vs_scalar(double tol) {
  for (unsigned n = 2; n <= 10; ++n) {
    Xoshiro256 rng(0x51d0 + n);
    for (const Gate& g : representative_gates(n, rng))
      EXPECT_LE(divergence<T>(g, n, 7700 + n), tol)
          << g.to_string() << " on n=" << n;
    // Vectorized classes at every target: the low targets (t < lanes) take
    // the in-register swizzle paths, high targets the unit-stride paths.
    for (unsigned t = 0; t < n; ++t) {
      EXPECT_EQ(divergence<T>(Gate::h(t), n, 8800 + t), 0.0)
          << "Hadamard must stay bit-exact at t=" << t << " n=" << n;
      EXPECT_LE(divergence<T>(Gate::rz(t, 1.13), n, 8900 + t), tol)
          << "rz t=" << t << " n=" << n;
      EXPECT_LE(divergence<T>(Gate::u(t, 0.3, 0.7, 1.9), n, 9000 + t), tol)
          << "u t=" << t << " n=" << n;
    }
  }
}

/// Selects the parameterized backend for the test body (skipping when it
/// is unavailable on this build/CPU) and restores the previous one after.
class BackendEquivalence : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    prev_ = simd::active_backend().isa;
    const simd::BackendInfo* b = backend_info(GetParam());
    ASSERT_NE(b, nullptr);
    if (!b->available)
      GTEST_SKIP() << simd::isa_name(GetParam())
                   << " backend not available on this build/CPU";
    ASSERT_TRUE(simd::select_backend(GetParam()));
  }
  void TearDown() override { simd::select_backend(prev_); }

 private:
  simd::Isa prev_ = simd::Isa::Scalar;
};

TEST_P(BackendEquivalence, MatchesScalarReferenceF64) {
  check_backend_vs_scalar<double>(1e-13);
}

TEST_P(BackendEquivalence, MatchesScalarReferenceF32) {
  check_backend_vs_scalar<float>(1e-5);
}

TEST_P(BackendEquivalence, NonOverriddenEntriesAreTheScalarReference) {
  // Classes a backend does not hand-vectorize must dispatch to the exact
  // scalar function pointers — Unsupported among them, so the blocked
  // engine's error path is backend-independent.
  const auto& active_d = active_block_kernel_table<double>();
  const auto& scalar_d = block_kernel_table<double>();
  EXPECT_EQ(active_d[idx(KernelClass::Unsupported)],
            scalar_d[idx(KernelClass::Unsupported)]);
  const std::size_t overridden = simd::active_backend().overridden_classes;
  std::size_t differing = 0;
  for (std::size_t i = 0; i < kNumKernelClasses; ++i)
    differing += active_d[i] != scalar_d[i] ? 1 : 0;
  EXPECT_LE(differing, overridden);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, BackendEquivalence,
                         ::testing::Values(simd::Isa::Scalar,
                                           simd::Isa::Generic,
                                           simd::Isa::Avx2, simd::Isa::Neon,
                                           simd::Isa::Sve),
                         [](const auto& info) {
                           return std::string(simd::isa_name(info.param));
                         });

// ---- registry behavior ----------------------------------------------------

TEST(SimdRegistry, EnumeratesEveryIsaOnce) {
  const auto all = simd::backends();
  ASSERT_EQ(all.size(), simd::kNumIsas);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(static_cast<std::size_t>(all[i].isa), i);
  // Scalar and the compiler-vector backend have no hardware prerequisite.
  EXPECT_TRUE(backend_info(simd::Isa::Scalar)->available);
  EXPECT_TRUE(backend_info(simd::Isa::Generic)->available);
}

TEST(SimdRegistry, RejectsUnknownAndUnavailableSelection) {
  const simd::Isa prev = simd::active_backend().isa;
  EXPECT_FALSE(simd::select_backend("bogus"));
  EXPECT_EQ(simd::active_backend().isa, prev)
      << "a failed selection must not change the active backend";
  for (const auto& b : simd::backends())
    if (!b.available) EXPECT_FALSE(simd::select_backend(b.isa));
  EXPECT_EQ(simd::active_backend().isa, prev);
}

TEST(SimdRegistry, EnvOverrideRoundTrip) {
  const simd::Isa prev = simd::active_backend().isa;
  for (const auto& b : simd::backends()) {
    if (!b.available) continue;
    ASSERT_EQ(::setenv("SVSIM_SIMD", b.name, 1), 0);
    simd::select_default_backend();
    EXPECT_EQ(simd::active_backend().isa, b.isa) << "SVSIM_SIMD=" << b.name;
  }
  ::unsetenv("SVSIM_SIMD");
  simd::select_backend(prev);
}

TEST(SimdRegistry, EffectiveVectorBitsFallsBackToOneComplex) {
  const simd::Isa prev = simd::active_backend().isa;
  ASSERT_TRUE(simd::select_backend(simd::Isa::Scalar));
  EXPECT_EQ(simd::effective_vector_bits(8), 128u);  // one complex<double>
  EXPECT_EQ(simd::effective_vector_bits(4), 64u);   // one complex<float>
  const simd::BackendInfo* gen = backend_info(simd::Isa::Generic);
  ASSERT_TRUE(simd::select_backend(simd::Isa::Generic));
  EXPECT_EQ(simd::effective_vector_bits(8), gen->vector_bits);
  simd::select_backend(prev);
}

}  // namespace
}  // namespace svsim::sv
