#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/dist_plan.hpp"
#include "perf/profile_report.hpp"
#include "perf/report.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/plan.hpp"
#include "sv/simulator.hpp"

namespace svsim {
namespace {

using obs::PhaseSample;
using obs::Profiler;
using obs::ProfilerOptions;
using obs::RunProfile;

// ---- kind vocabulary ------------------------------------------------------

TEST(ProfilePhaseKinds, MirrorsPlanIrNamesAndValues) {
  // obs cannot include sv, so it mirrors the phase vocabulary numerically.
  // If this test fails, the two tables diverged — fix obs/profile.hpp.
  ASSERT_EQ(obs::kProfilePhaseKinds, 4u);
  for (std::uint8_t k = 0; k < obs::kProfilePhaseKinds; ++k) {
    EXPECT_STREQ(obs::profile_phase_name(k),
                 sv::phase_kind_name(static_cast<sv::PhaseKind>(k)));
  }
  EXPECT_STREQ(obs::profile_phase_name(obs::kProfilePhaseKinds), "?");
}

// ---- install / uninstall --------------------------------------------------

TEST(Profiler, InstallUninstallLifecycle) {
  EXPECT_EQ(Profiler::current(), nullptr);
  {
    Profiler p;
    EXPECT_FALSE(p.installed());
    p.install();
    EXPECT_TRUE(p.installed());
    EXPECT_EQ(Profiler::current(), &p);

    Profiler q;
    EXPECT_THROW(q.install(), std::exception);

    p.uninstall();
    EXPECT_EQ(Profiler::current(), nullptr);
    q.install();  // slot free again
    EXPECT_EQ(Profiler::current(), &q);
  }  // q's destructor uninstalls
  EXPECT_EQ(Profiler::current(), nullptr);
}

// ---- executor-facing API --------------------------------------------------

PhaseSample sample(std::uint32_t index, std::uint8_t kind,
                   std::uint64_t duration_ns, std::uint64_t bytes = 0,
                   std::uint64_t dropped = 0) {
  PhaseSample s;
  s.index = index;
  s.kind = kind;
  s.gates = 1;
  s.duration_ns = duration_ns;
  s.bytes = bytes;
  s.dropped_spans = dropped;
  return s;
}

TEST(Profiler, RecordsRunsAndPhases) {
  Profiler p;
  p.begin_run({});
  p.record_phase(sample(0, obs::kProfilePhaseLocalSweep, 1000, 64));
  p.record_phase(sample(1, obs::kProfilePhaseDenseGate, 2000, 32));
  p.end_run(/*duration_ns=*/5000, /*partial=*/false);

  const auto runs = p.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(p.runs_recorded(), 1u);
  EXPECT_EQ(runs[0].duration_ns, 5000u);
  EXPECT_FALSE(runs[0].partial);
  ASSERT_EQ(runs[0].phases.size(), 2u);
  EXPECT_EQ(runs[0].phases[1].bytes, 32u);
}

TEST(Profiler, DroppedSpansMarkTheRunPartial) {
  Profiler p;
  p.begin_run({});
  p.record_phase(sample(0, obs::kProfilePhaseDenseGate, 10, 0, /*dropped=*/3));
  p.end_run(20, /*partial=*/false);  // executor flag false; sample wins
  ASSERT_EQ(p.runs().size(), 1u);
  EXPECT_TRUE(p.runs()[0].partial);
}

TEST(Profiler, MaxRunsEvictsOldest) {
  ProfilerOptions opts;
  opts.max_runs = 2;
  Profiler p(opts);
  for (std::uint64_t i = 0; i < 4; ++i) {
    p.begin_run({});
    p.record_phase(sample(0, obs::kProfilePhaseDenseGate, i + 1));
    p.end_run(i + 1, false);
  }
  EXPECT_EQ(p.runs_recorded(), 4u);
  const auto runs = p.runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].duration_ns, 3u);  // oldest two evicted
  EXPECT_EQ(runs[1].duration_ns, 4u);
}

TEST(Profiler, AggregateModeRetainsNothingButFeedsTheRegistry) {
  obs::ProfileRegistry::global().reset();
  ProfilerOptions opts;
  opts.retain_runs = false;
  Profiler p(opts);
  p.begin_run({});
  p.record_phase(sample(0, obs::kProfilePhaseLocalSweep, 1000, 128));
  p.end_run(1000, false);
  EXPECT_TRUE(p.runs().empty());
  EXPECT_EQ(p.runs_recorded(), 1u);
  const auto totals =
      obs::ProfileRegistry::global().kind_totals(obs::kProfilePhaseLocalSweep);
  EXPECT_EQ(totals.phases, 1u);
  EXPECT_EQ(totals.bytes, 128u);
}

TEST(Profiler, AnnotateExchangeAttachesWireSeconds) {
  Profiler p;
  p.begin_run({});
  p.record_phase(sample(0, obs::kProfilePhaseDenseGate, 10));
  p.record_phase(sample(1, obs::kProfilePhaseExchange, 20));
  p.end_run(30, false);
  p.annotate_exchange(1, {1e-6, 2e-6});
  p.annotate_exchange(0, {9.0});  // wrong kind: ignored
  p.annotate_exchange(7, {9.0});  // out of range: ignored
  const auto runs = p.runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_DOUBLE_EQ(runs[0].phases[1].sim_exchange_seconds(), 3e-6);
  EXPECT_TRUE(runs[0].phases[0].sim_hop_seconds.empty());
}

// ---- registry -------------------------------------------------------------

TEST(ProfileRegistry, OpenMetricsDumpCarriesEveryFamily) {
  obs::ProfileRegistry::global().reset();
  obs::ProfileRegistry::global().note_phase(obs::kProfilePhaseExchange, 0.5,
                                            100, 0);
  obs::ProfileRegistry::global().note_run(0.5);
  std::ostringstream os;
  obs::ProfileRegistry::global().write_openmetrics(os);
  const std::string text = os.str();
  for (const char* family :
       {"svsim_profile_phases_total", "svsim_profile_phase_seconds_total",
        "svsim_profile_phase_bytes_total", "svsim_profile_phase_gates_total",
        "svsim_profile_runs_total", "svsim_profile_run_seconds_total"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  EXPECT_NE(text.find("svsim_profile_phases_total{kind=\"exchange\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  obs::ProfileRegistry::global().reset();
}

// ---- phase attribution on real plans --------------------------------------

struct ProfiledRun {
  RunProfile run;
  sv::ExecutionPlan plan;
  sv::EngineStats stats;
};

ProfiledRun profile_circuit(const qc::Circuit& circuit,
                            const sv::ExecutionPlan& plan) {
  Profiler profiler;
  profiler.install();
  sv::StateVector<double> state(circuit.num_qubits());
  sv::PlanHooks<double> hooks;
  hooks.measure = [](sv::StateVector<double>&, const qc::Gate&) {};
  const sv::EngineStats stats = sv::run_plan(state, plan, hooks);
  profiler.uninstall();
  const auto runs = profiler.runs();
  EXPECT_EQ(runs.size(), 1u);
  return {runs.empty() ? RunProfile{} : runs.back(), plan, stats};
}

void expect_phase_attribution(const ProfiledRun& r) {
  ASSERT_EQ(r.run.phases.size(), r.plan.phases.size());
  std::uint64_t phase_ns = 0;
  std::uint64_t phase_bytes = 0;
  for (std::size_t i = 0; i < r.run.phases.size(); ++i) {
    const PhaseSample& s = r.run.phases[i];
    EXPECT_EQ(s.index, i);
    EXPECT_EQ(s.kind, static_cast<std::uint8_t>(r.plan.phases[i].kind));
    if (r.plan.phases[i].kind != sv::PhaseKind::Exchange)
      EXPECT_EQ(s.gates, r.plan.phases[i].gates.size());
    phase_ns += s.duration_ns;
    phase_bytes += s.bytes;
  }
  // Phase wall-times nest inside the run wall-time (same clock): the sum
  // can only fall short of the run by the inter-phase bookkeeping.
  EXPECT_LE(phase_ns, r.run.duration_ns);
  // Per-phase bytes are deltas of the same engine counter the run total
  // accumulates, so they tile it exactly.
  EXPECT_EQ(phase_bytes, r.stats.bytes_streamed);
  EXPECT_GT(phase_bytes, 0u);
}

TEST(ProfilerAttribution, DensePlan) {
  const qc::Circuit circuit = qc::qft(8);
  const auto r = profile_circuit(circuit, sv::compile_plan(circuit, {}));
  expect_phase_attribution(r);
  for (const PhaseSample& s : r.run.phases)
    EXPECT_EQ(s.kind, obs::kProfilePhaseDenseGate);
}

TEST(ProfilerAttribution, BlockedPlan) {
  const qc::Circuit circuit = qc::qft(10);
  sv::PlanOptions opts;
  opts.blocking = true;
  opts.block_qubits = 5;
  const auto r = profile_circuit(circuit, sv::compile_plan(circuit, opts));
  expect_phase_attribution(r);
  EXPECT_TRUE(std::any_of(r.run.phases.begin(), r.run.phases.end(),
                          [](const PhaseSample& s) {
                            return s.kind == obs::kProfilePhaseLocalSweep;
                          }));
}

TEST(ProfilerAttribution, DistributedPlan) {
  const qc::Circuit circuit = qc::qft(10);
  dist::DistExecOptions opts;
  opts.plan.blocking = true;
  opts.plan.block_qubits = 4;
  const auto r =
      profile_circuit(circuit, dist::compile_distributed(circuit, 2, opts));
  expect_phase_attribution(r);
  EXPECT_TRUE(std::any_of(r.run.phases.begin(), r.run.phases.end(),
                          [](const PhaseSample& s) {
                            return s.kind == obs::kProfilePhaseExchange;
                          }));
}

// ---- plan capture ---------------------------------------------------------

TEST(PlanCaptureScope, CapturesEveryExecutedPlan) {
  const qc::Circuit circuit = qc::qft(6);
  const sv::ExecutionPlan plan = sv::compile_plan(circuit, {});
  sv::PlanCaptureScope capture;
  EXPECT_EQ(sv::PlanCaptureScope::current(), &capture);
  EXPECT_THROW(sv::PlanCaptureScope{}, std::exception);
  sv::StateVector<double> state(circuit.num_qubits());
  sv::run_plan(state, plan);
  const auto plans = capture.plans();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].phases.size(), plan.phases.size());
}

// ---- measured<->modeled join ----------------------------------------------

ProfiledRun profiled_blocked_qft() {
  const qc::Circuit circuit = qc::qft(10);
  sv::PlanOptions opts;
  opts.blocking = true;
  opts.block_qubits = 5;
  return profile_circuit(circuit, sv::compile_plan(circuit, opts));
}

TEST(ProfileReport, JoinsEveryPhaseAndNormalizesShares) {
  const auto r = profiled_blocked_qft();
  const auto m = machine::MachineSpec::a64fx();
  const perf::ProfileReport report =
      perf::build_profile_report(r.run, r.plan, m, {});
  ASSERT_EQ(report.phases.size(), r.plan.phases.size());
  double share = 0.0;
  for (const perf::PhaseProfile& p : report.phases) {
    EXPECT_GT(p.modeled_seconds, 0.0);
    EXPECT_GT(p.modeled_bytes, 0.0);
    // Zero-flop phases (pure permutations like swap) legitimately sit at
    // AI = 0; everything else must land on the roofline.
    if (p.kind != sv::PhaseKind::Exchange && p.flops > 0.0)
      EXPECT_GT(p.roofline.point.attainable_gflops, 0.0);
    share += p.share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_GT(report.measured_seconds, 0.0);
  EXPECT_GT(report.modeled_seconds, 0.0);
  EXPECT_FALSE(report.partial);

  const auto order = report.by_measured_time();
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(order[i - 1]->measured_seconds, order[i]->measured_seconds);
}

TEST(ProfileReport, MismatchedPlanIsRejected) {
  const auto r = profiled_blocked_qft();
  const sv::ExecutionPlan other = sv::compile_plan(qc::qft(4), {});
  ASSERT_NE(other.phases.size(), r.run.phases.size());
  const auto m = machine::MachineSpec::a64fx();
  EXPECT_THROW(perf::build_profile_report(r.run, other, m, {}),
               std::exception);
}

TEST(ProfileReport, PartialSamplePropagatesToReport) {
  auto r = profiled_blocked_qft();
  r.run.phases[0].dropped_spans = 5;
  const auto m = machine::MachineSpec::a64fx();
  const perf::ProfileReport report =
      perf::build_profile_report(r.run, r.plan, m, {});
  EXPECT_TRUE(report.partial);
  // The partial marker must surface in both human views.
  EXPECT_NE(perf::drift_phase_table(report).to_text().find("PARTIAL"),
            std::string::npos);
  EXPECT_NE(perf::profile_env_table(report).to_text().find("PARTIAL"),
            std::string::npos);
}

TEST(ProfileReport, JsonArtifactIsStructurallySound) {
  const auto r = profiled_blocked_qft();
  const auto m = machine::MachineSpec::a64fx();
  const perf::ProfileReport report =
      perf::build_profile_report(r.run, r.plan, m, {});
  std::ostringstream os;
  perf::write_profile_json(report, os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  for (const char* key :
       {"\"env\":{", "\"totals\":{", "\"phases\":[", "\"attribution\":[",
        "\"machine\":\"A64FX", "\"roofline\":{", "\"hw\":{",
        "\"cumulative_share\":", "\"probed_cache_budget_bytes\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Balanced braces/brackets — catches truncated writers.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Every phase appears once in "phases" and once in "attribution".
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"index\":"); pos != std::string::npos;
       pos = json.find("\"index\":", pos + 1))
    ++count;
  EXPECT_EQ(count, 2 * report.phases.size());
}

TEST(ProfileChromeOverlay, EmitsPhaseLanes) {
  const auto r = profiled_blocked_qft();
  std::ostringstream os;
  obs::write_profile_chrome_json(os, {}, {r.run});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("local_sweep"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

// ---- overhead guard -------------------------------------------------------

TEST(ProfilerOverhead, DisabledPathStaysUnderTwoPercent) {
  // The acceptance criterion is on the *disabled* hot path: one atomic
  // load per run when no profiler is installed. Compare best-of-N so the
  // guard measures the floor, not scheduler noise.
  const qc::Circuit circuit = qc::qft(13);
  sv::PlanOptions opts;
  opts.blocking = true;
  const sv::ExecutionPlan plan = sv::compile_plan(circuit, opts);
  sv::StateVector<double> state(circuit.num_qubits());

  const auto best_of = [&](bool profiled) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Profiler profiler;
      if (profiled) profiler.install();
      const auto t0 = obs::Tracer::global().now_ns();
      sv::run_plan(state, plan);
      const auto t1 = obs::Tracer::global().now_ns();
      if (profiled) profiler.uninstall();
      best = std::min(best, static_cast<double>(t1 - t0));
    }
    return best;
  };

  best_of(false);  // warm up caches and the thread pool
  const double baseline = best_of(false);
  const double profiled = best_of(true);
  // 2% target with absolute slack for timer/scheduler granularity on the
  // very short smoke-tier runs.
  EXPECT_LT(profiled, baseline * 1.02 + 2e6)
      << "profiled best " << profiled * 1e-6 << " ms vs baseline "
      << baseline * 1e-6 << " ms";
}

}  // namespace
}  // namespace svsim
