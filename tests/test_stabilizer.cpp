#include "stab/stabilizer.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "common/error.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

namespace svsim::stab {
namespace {

using qc::Circuit;
using qc::Gate;
using qc::PauliString;

TEST(Stabilizer, InitialStateStabilizedByZ) {
  StabilizerState s(3);
  EXPECT_EQ(s.expectation(PauliString::from_label("IIZ")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("ZII")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("ZZZ")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("XII")), 0);
  EXPECT_EQ(s.expectation(PauliString::from_label("IYI")), 0);
}

TEST(Stabilizer, HadamardMakesPlusState) {
  StabilizerState s(1);
  s.h(0);
  EXPECT_EQ(s.expectation(PauliString::from_label("X")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("Z")), 0);
}

TEST(Stabilizer, XFlipsSign) {
  StabilizerState s(2);
  s.x(0);
  EXPECT_EQ(s.expectation(PauliString::from_label("IZ")), -1);
  EXPECT_EQ(s.expectation(PauliString::from_label("ZI")), 1);
}

TEST(Stabilizer, SGivesYPlus) {
  // S|+> = |y+> with <Y> = +1; Sdg gives -1.
  StabilizerState s(1);
  s.h(0);
  s.s(0);
  EXPECT_EQ(s.expectation(PauliString::from_label("Y")), 1);
  StabilizerState t(1);
  t.h(0);
  t.sdg(0);
  EXPECT_EQ(t.expectation(PauliString::from_label("Y")), -1);
}

TEST(Stabilizer, SxIsSqrtX) {
  // SX|0> has <Y> = -1 (matches the dense matrix), SX² = X.
  StabilizerState s(1);
  s.apply(Gate::sx(0));
  EXPECT_EQ(s.expectation(PauliString::from_label("Y")), -1);
  s.apply(Gate::sx(0));
  EXPECT_EQ(s.expectation(PauliString::from_label("Z")), -1);  // now |1>
}

TEST(Stabilizer, BellStateCorrelations) {
  StabilizerState s(2);
  s.h(0);
  s.cx(0, 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("ZZ")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("XX")), 1);
  EXPECT_EQ(s.expectation(PauliString::from_label("YY")), -1);
  EXPECT_EQ(s.expectation(PauliString::from_label("ZI")), 0);
  EXPECT_EQ(s.expectation(PauliString::from_label("IX")), 0);
}

TEST(Stabilizer, GhzAtScaleBeyondStateVectors) {
  // 200 qubits: far beyond any state-vector register.
  const unsigned n = 200;
  StabilizerState s(n);
  s.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) s.cx(q, q + 1);
  // Every single-qubit outcome is undetermined before any measurement.
  for (unsigned q = 0; q < 5; ++q)
    EXPECT_FALSE(s.deterministic_outcome(q).has_value());
  // Measuring qubit 0 pins every other qubit.
  Xoshiro256 rng(5);
  const bool first = s.measure(0, rng);
  for (unsigned q = 1; q < 5; ++q) {
    const auto det = s.deterministic_outcome(q);
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(*det, first);
  }
}

TEST(Stabilizer, DeterministicOutcomeDetection) {
  StabilizerState s(2);
  EXPECT_TRUE(s.deterministic_outcome(0).has_value());
  EXPECT_FALSE(*s.deterministic_outcome(0));
  s.h(0);
  EXPECT_FALSE(s.deterministic_outcome(0).has_value());
  s.x(1);
  ASSERT_TRUE(s.deterministic_outcome(1).has_value());
  EXPECT_TRUE(*s.deterministic_outcome(1));
}

TEST(Stabilizer, MeasurementCollapsesAndRepeats) {
  Xoshiro256 rng(7);
  StabilizerState s(1);
  s.h(0);
  const bool outcome = s.measure(0, rng);
  // Re-measurement is now deterministic and equal.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.measure(0, rng), outcome);
}

TEST(Stabilizer, MeasurementStatisticsOnPlus) {
  Xoshiro256 rng(11);
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    StabilizerState s(1);
    s.h(0);
    ones += s.measure(0, rng);
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.5, 0.05);
}

TEST(Stabilizer, CliffordAngleGates) {
  StabilizerState s(2);
  s.h(0);
  s.apply(Gate::p(0, std::numbers::pi / 2));  // = S
  EXPECT_EQ(s.expectation(PauliString::from_label("IY")), 1);
  s.apply(Gate::rz(0, std::numbers::pi));     // = Z up to phase
  EXPECT_EQ(s.expectation(PauliString::from_label("IY")), -1);
  s.h(1);
  s.apply(Gate::cp(0, 1, std::numbers::pi));  // = CZ
  EXPECT_EQ(s.expectation(PauliString::from_label("II")), 1);
}

TEST(Stabilizer, NonCliffordRejected) {
  StabilizerState s(2);
  EXPECT_THROW(s.apply(Gate::t(0)), Error);
  EXPECT_THROW(s.apply(Gate::rx(0, 0.3)), Error);
  EXPECT_THROW(s.apply(Gate::rz(0, 0.7)), Error);
  EXPECT_THROW(s.apply(Gate::ccx(0, 1, 2)), Error);  // non-Clifford kind
}

TEST(Stabilizer, IsCliffordClassification) {
  EXPECT_TRUE(StabilizerState::is_clifford(qc::GateKind::H));
  EXPECT_TRUE(StabilizerState::is_clifford(qc::GateKind::CX));
  EXPECT_TRUE(StabilizerState::is_clifford(qc::GateKind::ISWAP));
  EXPECT_FALSE(StabilizerState::is_clifford(qc::GateKind::T));
  EXPECT_FALSE(StabilizerState::is_clifford(qc::GateKind::CCX));
}

TEST(Stabilizer, ToStringShowsGenerators) {
  StabilizerState s(2);
  s.h(0);
  s.cx(0, 1);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("XX"), std::string::npos);
  EXPECT_NE(str.find("ZZ"), std::string::npos);
}

// ---- cross-validation against the state-vector simulator -----------------

/// Random Clifford circuit over {H, S, Sdg, X, CX, CZ, SWAP}.
Circuit random_clifford(unsigned n, std::size_t length, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c(n);
  for (std::size_t i = 0; i < length; ++i) {
    const auto q = static_cast<unsigned>(rng.uniform_int(n));
    auto p = static_cast<unsigned>(rng.uniform_int(n - 1));
    if (p >= q) ++p;
    switch (rng.uniform_int(7)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.sdg(q); break;
      case 3: c.x(q); break;
      case 4: c.cx(q, p); break;
      case 5: c.cz(q, p); break;
      case 6: c.swap(q, p); break;
    }
  }
  return c;
}

class CliffordCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliffordCrossValidation, ExpectationsMatchStateVector) {
  const unsigned n = 6;
  const Circuit c = random_clifford(n, 60, GetParam());
  const StabilizerState stab = run_clifford(c);
  sv::Simulator<double> sim;
  const auto svec = sim.run(c);

  Xoshiro256 prng(GetParam() + 999);
  for (int trial = 0; trial < 25; ++trial) {
    const PauliString p(n, prng.uniform_int(64), prng.uniform_int(64));
    const int stab_exp = stab.expectation(p);
    const double sv_exp = svec.expectation(p);
    EXPECT_NEAR(sv_exp, static_cast<double>(stab_exp), 1e-9)
        << "pauli " << p.to_label();
  }
}

TEST_P(CliffordCrossValidation, DeterministicOutcomesMatchProbabilities) {
  const unsigned n = 5;
  const Circuit c = random_clifford(n, 40, GetParam() * 3 + 1);
  const StabilizerState stab = run_clifford(c);
  sv::Simulator<double> sim;
  const auto svec = sim.run(c);
  for (unsigned q = 0; q < n; ++q) {
    const double p1 = svec.probability_of_one(q);
    const auto det = stab.deterministic_outcome(q);
    if (det.has_value()) {
      EXPECT_NEAR(p1, *det ? 1.0 : 0.0, 1e-9) << "qubit " << q;
    } else {
      EXPECT_NEAR(p1, 0.5, 1e-9) << "qubit " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliffordCrossValidation,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

}  // namespace
}  // namespace svsim::stab
