// Timeline recorder + critical-path attribution + what-if replay.
//
// The load-bearing invariant: the recorder re-derives the makespan
// simulator's clock chain with the same floating-point expressions, so the
// chronological sum of critical-path step durations equals the returned
// makespan *bit-exactly* (EXPECT_EQ on doubles, not EXPECT_NEAR). The same
// exactness holds for the what-if replay at all-1.0 knobs and for the
// power-of-two "everything x2" scenario. These tests pin that invariant on
// dense, blocked, and 2/4/8-rank distributed plans (with and without a
// trailing measurement), plus the structural properties the JSON schema
// checker relies on: gap-free per-rank tiling, symmetric wire pairing, and
// waits that never appear on the path.
#include "dist/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "dist/dist_plan.hpp"
#include "dist/dist_sim.hpp"
#include "machine/machine_spec.hpp"
#include "obs/metrics.hpp"
#include "perf/critical_path.hpp"
#include "qc/library.hpp"
#include "sv/plan.hpp"

namespace svsim::dist {
namespace {

const machine::MachineSpec kA64fx = machine::MachineSpec::a64fx();
const InterconnectSpec kTofu = InterconnectSpec::tofu_d();

sv::ExecutionPlan distributed_plan(unsigned num_qubits, unsigned node_qubits,
                                   bool measured = false) {
  qc::Circuit c = qc::random_quantum_volume(num_qubits, 4, 17);
  if (measured) c.measure_all();
  return compile_distributed(c, node_qubits, {});
}

Timeline record(const sv::ExecutionPlan& plan,
                const StragglerConfig& straggler = {}) {
  return record_timeline(plan, kA64fx, {}, kTofu, straggler);
}

// ------------------------------------------------------------- recording --

TEST(Timeline, DensePlanIsASingleComputeLane) {
  const sv::ExecutionPlan plan = sv::compile_plan(qc::qft(8), {});
  const Timeline tl = record(plan);
  ASSERT_EQ(tl.num_ranks(), 1u);
  EXPECT_EQ(tl.plan_id, plan.summary_id());
  EXPECT_GT(tl.total_events(), 0u);
  for (const auto& e : tl.ranks[0].events)
    EXPECT_EQ(e.kind, TimelineEventKind::Compute);
  // The recorder does not perturb the simulator: bit-identical makespan.
  EXPECT_EQ(tl.makespan_seconds, event_driven_makespan(plan, kA64fx, {}, kTofu));
}

TEST(Timeline, RecorderMatchesRecorderlessMakespanBitExactly) {
  const sv::ExecutionPlan plan = distributed_plan(12, 3);
  const Timeline tl = record(plan);
  EXPECT_EQ(tl.makespan_seconds, event_driven_makespan(plan, kA64fx, {}, kTofu));
  EXPECT_EQ(tl.num_ranks(), 8u);
}

TEST(Timeline, RankAxesTileWithoutGaps) {
  const Timeline tl = record(distributed_plan(12, 3));
  for (const auto& rt : tl.ranks) {
    double clock = 0.0;
    double compute = 0.0, wire = 0.0, wait = 0.0;
    for (const auto& e : rt.events) {
      EXPECT_DOUBLE_EQ(e.start_seconds, clock);
      clock = e.end_seconds();
      switch (e.kind) {
        case TimelineEventKind::Compute: compute += e.duration_seconds; break;
        case TimelineEventKind::Wire: wire += e.duration_seconds; break;
        case TimelineEventKind::Wait: wait += e.duration_seconds; break;
      }
    }
    EXPECT_LE(rt.end_seconds, tl.makespan_seconds);
    EXPECT_DOUBLE_EQ(rt.compute_seconds, compute);
    EXPECT_DOUBLE_EQ(rt.wire_seconds, wire);
    EXPECT_DOUBLE_EQ(rt.wait_seconds, wait);
  }
}

TEST(Timeline, WireEventsArePairedSymmetrically) {
  const Timeline tl = record(distributed_plan(12, 2));
  std::size_t wires = 0;
  for (const auto& rt : tl.ranks) {
    for (std::size_t i = 0; i < rt.events.size(); ++i) {
      const TimelineEvent& e = rt.events[i];
      if (e.kind != TimelineEventKind::Wire) {
        EXPECT_EQ(e.partner_event, kNoPartnerEvent);
        continue;
      }
      ++wires;
      ASSERT_LT(e.partner, tl.num_ranks());
      const auto& pe = tl.ranks[e.partner].events.at(e.partner_event);
      EXPECT_EQ(pe.kind, TimelineEventKind::Wire);
      EXPECT_EQ(pe.partner, rt.rank);
      EXPECT_EQ(pe.partner_event, static_cast<std::uint32_t>(i));
      EXPECT_EQ(pe.start_seconds, e.start_seconds);
      EXPECT_EQ(pe.duration_seconds, e.duration_seconds);
      EXPECT_EQ(pe.rank_bit, e.rank_bit);
      EXPECT_EQ(pe.bytes, e.bytes);
      // The interconnect cost split reassembles into the duration.
      EXPECT_EQ(e.duration_seconds, e.fixed_seconds + e.transfer_seconds);
    }
  }
  EXPECT_GT(wires, 0u);
}

// --------------------------------------------------------- critical path --

TEST(CriticalPath, SumEqualsMakespanOnDensePlan) {
  const Timeline tl = record(sv::compile_plan(qc::qft(8), {}));
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  EXPECT_EQ(cp.path_seconds, tl.makespan_seconds);
  EXPECT_EQ(cp.wire_seconds, 0.0);
}

TEST(CriticalPath, SumEqualsMakespanOnBlockedPlan) {
  sv::PlanOptions po;
  po.blocking = true;
  po.machine = &kA64fx;
  const Timeline tl = record(sv::compile_plan(qc::qft(12), po));
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  EXPECT_EQ(cp.path_seconds, tl.makespan_seconds);
}

TEST(CriticalPath, SumEqualsMakespanAcrossRankCounts) {
  for (unsigned d : {1u, 2u, 3u}) {
    const Timeline tl = record(distributed_plan(12, d));
    const perf::CriticalPath cp = perf::extract_critical_path(tl);
    EXPECT_EQ(cp.path_seconds, tl.makespan_seconds) << "ranks=" << (1u << d);
    EXPECT_GT(cp.wire_seconds, 0.0) << "ranks=" << (1u << d);
    ASSERT_EQ(cp.ranks.size(), std::size_t{1} << d);
    // Per-rank critical seconds partition the path.
    double critical = 0.0;
    for (const auto& ra : cp.ranks) critical += ra.critical_seconds;
    EXPECT_NEAR(critical, cp.path_seconds, cp.path_seconds * 1e-12);
  }
}

TEST(CriticalPath, TrailingMeasurementFinishesThePath) {
  const Timeline tl = record(distributed_plan(12, 2, /*measured=*/true));
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  EXPECT_EQ(cp.path_seconds, tl.makespan_seconds);
  ASSERT_FALSE(cp.steps.empty());
  EXPECT_EQ(cp.steps.back().phase_kind, sv::PhaseKind::MeasureFlush);
}

TEST(CriticalPath, AttributionSpansTheMakespanPerRank) {
  const Timeline tl = record(distributed_plan(12, 3));
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  for (const auto& ra : cp.ranks) {
    const double span =
        ra.compute_seconds + ra.wire_seconds + ra.wait_seconds + ra.slack_seconds;
    EXPECT_NEAR(span, tl.makespan_seconds, tl.makespan_seconds * 1e-9)
        << "rank " << ra.rank;
  }
  std::uint64_t histogrammed = 0;
  for (const auto b : cp.slack_histogram) histogrammed += b;
  EXPECT_EQ(histogrammed, tl.num_ranks());
}

TEST(CriticalPath, StragglerWaitsStayOffThePath) {
  const sv::ExecutionPlan plan = distributed_plan(12, 3);
  StragglerConfig s;
  s.node = 3;
  s.slowdown = 3.0;
  const Timeline clean = record(plan);
  const Timeline slow = record(plan, s);
  EXPECT_GT(slow.makespan_seconds, clean.makespan_seconds);

  std::size_t waits = 0;
  for (const auto& rt : slow.ranks)
    for (const auto& e : rt.events)
      if (e.kind == TimelineEventKind::Wait) ++waits;
  EXPECT_GT(waits, 0u);

  const perf::CriticalPath cp = perf::extract_critical_path(slow);
  EXPECT_EQ(cp.path_seconds, slow.makespan_seconds);
  EXPECT_EQ(cp.wait_seconds, 0.0);
  for (const auto& step : cp.steps)
    EXPECT_NE(step.kind, TimelineEventKind::Wait);
  // The straggler carries the bulk of the path.
  const auto& straggler_share = cp.ranks[3].critical_seconds;
  for (const auto& ra : cp.ranks)
    if (ra.rank != 3) EXPECT_LT(ra.critical_seconds, straggler_share);
}

// --------------------------------------------------------------- what-if --

TEST(WhatIf, UnityKnobsReproduceMakespanBitExactly) {
  for (unsigned d : {1u, 3u}) {
    const Timeline tl = record(distributed_plan(12, d));
    const perf::WhatIfResult r = perf::replay_timeline(tl, perf::WhatIfKnobs{});
    EXPECT_EQ(r.makespan_seconds, tl.makespan_seconds) << "ranks=" << (1u << d);
    EXPECT_EQ(r.baseline_seconds, tl.makespan_seconds);
    EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
  }
}

TEST(WhatIf, EverythingTwiceAsFastHalvesTheMakespan) {
  // Every replayed duration is scaled by exactly 0.5 (a power of two), and
  // halving commutes with IEEE addition/rounding, so the speedup is exact.
  const Timeline tl = record(distributed_plan(12, 3));
  perf::WhatIfKnobs k;
  k.name = "everything x2";
  k.compute_scale = 2.0;
  k.link_bandwidth_scale = 2.0;
  k.latency_scale = 0.5;
  const perf::WhatIfResult r = perf::replay_timeline(tl, k);
  EXPECT_EQ(2.0 * r.makespan_seconds, tl.makespan_seconds);
}

TEST(WhatIf, KnobsMoveTheMakespanTheRightWay) {
  const Timeline tl = record(distributed_plan(12, 3));
  perf::WhatIfKnobs compute;
  compute.compute_scale = 2.0;
  perf::WhatIfKnobs wire;
  wire.link_bandwidth_scale = 2.0;
  wire.latency_scale = 0.5;
  const double base = tl.makespan_seconds;
  EXPECT_LT(perf::replay_timeline(tl, compute).makespan_seconds, base);
  EXPECT_LT(perf::replay_timeline(tl, wire).makespan_seconds, base);
}

TEST(WhatIf, DefaultSensitivitySweepLeadsWithBaseline) {
  const Timeline tl = record(distributed_plan(12, 2));
  const auto results = perf::whatif_sensitivity(tl);
  ASSERT_EQ(results.size(), perf::default_whatif_scenarios().size());
  EXPECT_EQ(results[0].knobs.name, "baseline");
  EXPECT_EQ(results[0].makespan_seconds, tl.makespan_seconds);
  for (const auto& r : results) EXPECT_EQ(r.baseline_seconds, tl.makespan_seconds);
}

// ---------------------------------------------------------------- guards --

TEST(Guards, MakespanRefusesPlansAboveTheRankCap) {
  // 2^23 ranks: one above kMakespanMaxRanks. The guard fires before any
  // per-rank allocation, so compiling the plan is the only real cost.
  const sv::ExecutionPlan plan = compile_distributed(qc::qft(25), 23, {});
  try {
    event_driven_makespan(plan, kA64fx, {}, kTofu);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("8388608"), std::string::npos) << msg;
    EXPECT_NE(msg.find(plan.summary_id()), std::string::npos) << msg;
  }
}

TEST(Guards, TimelineRefusesPlansAboveTheRecorderCap) {
  // 2^13 ranks: fine for the makespan simulator, too wide to record.
  const sv::ExecutionPlan plan = compile_distributed(qc::qft(15), 13, {});
  try {
    record(plan);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("8192"), std::string::npos) << msg;
    EXPECT_NE(msg.find(plan.summary_id()), std::string::npos) << msg;
  }
}

// --------------------------------------------------------- observability --

TEST(Metrics, RecordingPublishesTimelineGauges) {
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t records0 = registry.counter("dist.timeline.records").value();
  const std::uint64_t events0 = registry.counter("dist.timeline.events").value();
  const Timeline tl = record(distributed_plan(12, 3));
  EXPECT_EQ(registry.counter("dist.timeline.records").value(), records0 + 1);
  EXPECT_EQ(registry.counter("dist.timeline.events").value(),
            events0 + tl.total_events());
  EXPECT_DOUBLE_EQ(registry.gauge("dist.timeline.imbalance").value(),
                   tl.imbalance());
  EXPECT_DOUBLE_EQ(registry.gauge("dist.timeline.wire_utilization").value(),
                   tl.wire_utilization());
  EXPECT_DOUBLE_EQ(registry.gauge("dist.timeline.makespan_seconds").value(),
                   tl.makespan_seconds);
  EXPECT_GE(tl.imbalance(), 1.0);
  EXPECT_GT(tl.wire_utilization(), 0.0);
  EXPECT_LE(tl.wire_utilization(), 1.0);
}

TEST(ChromeTrace, OneLanePerRankPlusWireLane) {
  const Timeline tl = record(distributed_plan(12, 3));
  std::ostringstream os;
  write_timeline_chrome_json(os, tl);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos);
  EXPECT_NE(json.find("wire b"), std::string::npos);
  // One thread-name metadata record per rank in the rank-lane process.
  for (std::uint64_t r = 0; r < tl.num_ranks(); ++r) {
    const std::string lane = "\"tid\":" + std::to_string(r);
    EXPECT_NE(json.find(lane), std::string::npos) << "rank " << r;
  }
}

TEST(ArtifactJson, ContainsSchemaSpine) {
  const Timeline tl = record(distributed_plan(12, 2, /*measured=*/true));
  const perf::CriticalPath cp = perf::extract_critical_path(tl);
  std::ostringstream os;
  perf::write_timeline_json(tl, cp, perf::whatif_sensitivity(tl), os);
  const std::string json = os.str();
  for (const char* key :
       {"\"version\"", "\"plan\"", "\"makespan_seconds\"", "\"ranks\"",
        "\"critical_path\"", "\"attribution\"", "\"slack_histogram\"",
        "\"whatif\"", "\"wire_utilization\"", "\"imbalance\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

// ------------------------------------------------------- machine scaling --

TEST(WhatIf, ScaledMachineLowersTheRecordedMakespan) {
  const sv::ExecutionPlan plan = distributed_plan(12, 2);
  const Timeline base = record(plan);
  const machine::MachineSpec fast = kA64fx.scaled(2.0, 2.0);
  const Timeline scaled = record_timeline(plan, fast, {}, kTofu);
  EXPECT_LT(scaled.makespan_seconds, base.makespan_seconds);
  EXPECT_NE(fast.name, kA64fx.name);
}

}  // namespace
}  // namespace svsim::dist
